//! Figures 8-10: scalability — processing time vs updates (Fig. 8),
//! vs cluster count K and dimensionality d (Fig. 9), and memory usage
//! (Fig. 10).

use crate::figs::common::{paper_config, paper_config_dim};
use crate::table::{emit, Series};
use crate::timing::time_it;
use crate::workloads;
use crate::Scale;
use cludistream::{Config, RemoteSite};
use cludistream_baselines::{ScalableEm, SemConfig};
use cludistream_gmm::CovarianceType;
use cludistream_linalg::Vector;

/// Wall time to push `records` into a fresh CluDistream site.
fn clu_time(config: &Config, records: Vec<Vector>) -> f64 {
    let mut site = RemoteSite::new(config.clone()).expect("valid config");
    let (_, secs) = time_it(|| {
        for x in records {
            site.push(x).expect("site processes");
        }
    });
    secs
}

/// Wall time to push `records` into a fresh SEM instance.
fn sem_time(k: usize, records: Vec<Vector>) -> f64 {
    let mut sem = ScalableEm::new(SemConfig { k, buffer_size: 1000, seed: 8, ..Default::default() })
        .expect("valid SEM config");
    let (_, secs) = time_it(|| {
        for x in records {
            sem.push(x).expect("SEM processes");
        }
    });
    secs
}

/// Runs the Fig. 8 experiment: time vs number of updates.
pub fn run_fig8(scale: Scale) {
    let steps: Vec<usize> = (1..=5).map(|i| scale.updates(10_000) * i).collect();

    type Maker = Box<dyn Fn(usize) -> Vec<Vector>>;
    let datasets: [(&str, &str, Maker, usize); 2] = [
        (
            "fig8a",
            "Fig 8(a): processing time vs updates, NFD-like",
            Box::new(|n| {
                let norm = workloads::nfd_like_normalizer(81);
                let mut s = workloads::nfd_like_boxed(&norm, 0.05, 82);
                workloads::collect(&mut *s, n)
            }),
            workloads::NFD_DIM,
        ),
        (
            "fig8b",
            "Fig 8(b): processing time vs updates, synthetic",
            Box::new(|n| {
                let mut s = workloads::synthetic_boxed(4, 5, 0.1, 83);
                workloads::collect(&mut *s, n)
            }),
            4,
        ),
    ];

    for (id, title, make, dim) in datasets {
        let config = paper_config_dim(dim);
        let mut clu = Series::new("CluDistream (s)");
        let mut sem = Series::new("SEM (s)");
        for &n in &steps {
            let data = make(n);
            clu.push(n as f64, clu_time(&config, data.clone()));
            sem.push(n as f64, sem_time(config.k, data));
        }
        if let (Some(c), Some(s)) = (clu.last_y(), sem.last_y()) {
            let n = *steps.last().expect("non-empty steps") as f64;
            println!(
                "[{id}] at {n} updates: CluDistream {:.0} upd/s vs SEM {:.0} upd/s",
                n / c.max(1e-9),
                n / s.max(1e-9)
            );
        }
        emit(id, title, "updates", &[clu, sem]);
    }
}

/// Runs the Fig. 9 experiment: time vs K and vs d.
///
/// The workload is normalized across configurations: a fresh regime every
/// two chunks (via the cycling generator with more regimes than any c_max
/// can reuse), so every run performs the same *number* of EM clusterings
/// and the measured scaling isolates the per-operation cost, as the
/// paper's linear-scaling claim intends.
pub fn run_fig9(scale: Scale) {
    use crate::figs::common::separated_cycling_stream;
    let updates = scale.updates(30_000);

    // (a) varying K, fixed d = 4. EM iteration counts are pinned so the
    // measured scaling is per-operation cost, not convergence luck.
    let mut by_k = Series::new("CluDistream (s)");
    let mut em_k = Series::new("EM clusterings");
    for k in [10usize, 20, 30, 40] {
        let mut config = paper_config();
        config.k = k;
        config.em_max_iters = 20;
        config.em_tol = 0.0;
        let site = RemoteSite::new(config.clone()).expect("valid config");
        let data: Vec<Vector> =
            separated_cycling_stream(4, 8, 64, 2 * site.chunk_size(), 91).take(updates).collect();
        let mut site = RemoteSite::new(config).expect("valid config");
        let (_, secs) = time_it(|| {
            for x in data {
                site.push(x).expect("site processes");
            }
        });
        by_k.push(k as f64, secs);
        em_k.push(k as f64, site.stats().clustered as f64);
    }
    emit("fig9a", "Fig 9(a): processing time vs cluster count K (d=4)", "K", &[by_k, em_k]);

    // (b) varying d, fixed K = 5. The chunk size M grows linearly with d
    // (Theorem 1), so fewer chunks fit in a fixed update budget; total time
    // still scales linearly because per-record cost is what grows.
    // Diagonal covariances, as Theorem 3's d-vector representation: with
    // full matrices the per-record cost is inherently O(d^2) and the
    // paper's linear-in-d claim cannot hold.
    let mut by_d = Series::new("CluDistream diag (s)");
    let mut em_d = Series::new("EM clusterings");
    for d in [10usize, 20, 30, 40] {
        let mut config = paper_config_dim(d);
        config.covariance = CovarianceType::Diagonal;
        config.em_max_iters = 20;
        config.em_tol = 0.0;
        let site = RemoteSite::new(config.clone()).expect("valid config");
        let data: Vec<Vector> =
            separated_cycling_stream(d, 5, 64, 2 * site.chunk_size(), 92).take(updates).collect();
        let mut site = RemoteSite::new(config).expect("valid config");
        let (_, secs) = time_it(|| {
            for x in data {
                site.push(x).expect("site processes");
            }
        });
        by_d.push(d as f64, secs);
        em_d.push(d as f64, site.stats().clustered as f64);
    }
    emit("fig9b", "Fig 9(b): processing time vs dimensionality d (K=5)", "d", &[by_d, em_d]);
}

/// Runs the Fig. 10 experiment: memory usage.
pub fn run_fig10(scale: Scale) {
    // (a) memory vs updates on both workloads: checkpoints along one run.
    let checkpoints: Vec<usize> = (1..=5).map(|i| scale.updates(10_000) * i).collect();
    let mut series = Vec::new();
    for (name, dim, seed, nfd) in
        [("NFD-like", workloads::NFD_DIM, 101u64, true), ("synthetic", 4, 102, false)]
    {
        let config = paper_config_dim(dim);
        let mut site = RemoteSite::new(config).expect("valid config");
        let mut stream: Box<dyn Iterator<Item = Vector> + Send> = if nfd {
            let norm = workloads::nfd_like_normalizer(seed);
            workloads::nfd_like_boxed(&norm, 0.05, seed + 1)
        } else {
            workloads::synthetic_boxed(4, 5, 0.1, seed)
        };
        let mut s = Series::new(format!("{name} (bytes)"));
        let mut fed = 0usize;
        for &cp in &checkpoints {
            while fed < cp {
                site.push(stream.next().expect("infinite stream")).expect("site processes");
                fed += 1;
            }
            s.push(cp as f64, site.memory_bytes() as f64);
        }
        series.push(s);
    }
    emit("fig10a", "Fig 10(a): site memory vs updates", "updates", &series);

    // (b) memory vs K for several d: run enough updates to learn a few
    // models, then account memory.
    let updates = scale.updates(8_000);
    let mut series = Vec::new();
    for d in [10usize, 20, 30, 40] {
        let mut s = Series::new(format!("d={d} (bytes)"));
        for k in [10usize, 20, 30, 40] {
            let mut config = paper_config_dim(d);
            config.k = k;
            // Memory accounting (Theorem 3) is what Fig. 10(b) plots; the
            // model-parameter term dominates, so one learned model per
            // (K, d) cell is enough to show the slopes — a handful of EM
            // iterations suffices (the estimate's quality is irrelevant to
            // its size).
            config.em_max_iters = 5;
            let mut site = RemoteSite::new(config).expect("valid config");
            let mut stream = workloads::synthetic_boxed(d, k.min(10), 0.1, 103);
            // Always feed two full chunks so at least one model is learned
            // regardless of how big Theorem 1 makes M for this d.
            let need = (2 * site.chunk_size()).max(updates.min(2 * site.chunk_size()));
            let data = workloads::collect(&mut *stream, need);
            for x in data {
                site.push(x).expect("site processes");
            }
            s.push(k as f64, site.memory_bytes() as f64);
        }
        series.push(s);
    }
    emit("fig10b", "Fig 10(b): site memory vs K, for several d", "K", &series);

    // The diagonal-covariance representation Theorem 3 mentions.
    let mut config = paper_config();
    config.covariance = CovarianceType::Diagonal;
    let mut site = RemoteSite::new(config).expect("valid config");
    let mut stream = workloads::synthetic_boxed(4, 5, 0.1, 104);
    for x in workloads::collect(&mut *stream, 2 * site.chunk_size()) {
        site.push(x).expect("site processes");
    }
    println!(
        "[fig10] diagonal-covariance site after 2 chunks: {} bytes (full-covariance term drops \
         from d^2 to d per component)",
        site.memory_bytes()
    );
}
