//! Figure 1: `M_merge` vs `J_merge` over the 28 pairs of an 8-component
//! mixture, both normalized to [0, 1], on (a) NFD-like data and (b)
//! synthetic data. The paper's claim: the curves are "very similar", so
//! the raw-data-free `M_merge` can replace SMEM's `J_merge` at the
//! coordinator.

use crate::table::{emit, spearman, Series};
use crate::workloads;
use crate::Scale;
use cludistream::coordinator::{merge_criteria_table, normalize_column};
use cludistream_gmm::{fit_em, EmConfig};
use cludistream_linalg::Vector;

fn one_dataset(id: &str, title: &str, data: &[Vector], seed: u64) {
    let fit = fit_em(data, &EmConfig { k: 8, seed, max_iters: 60, ..Default::default() })
        .expect("EM fits the sample");
    let rows = merge_criteria_table(&fit.mixture, data);
    assert_eq!(rows.len(), 28, "8 components give 28 pairs");
    let m_raw: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let j_raw: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let m_norm = normalize_column(&m_raw);
    let j_norm = normalize_column(&j_raw);

    // Plot in descending J_merge order so both curves decay like the
    // paper's figure.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| j_norm[b].partial_cmp(&j_norm[a]).expect("finite"));

    let mut m_series = Series::new("M_merge (normalized)");
    let mut j_series = Series::new("J_merge (normalized)");
    for (idx, &row) in order.iter().enumerate() {
        m_series.push((idx + 1) as f64, m_norm[row]);
        j_series.push((idx + 1) as f64, j_norm[row]);
    }
    let rho = spearman(&m_raw, &j_raw);
    println!("[{title}] Spearman rank correlation M_merge vs J_merge: {rho:.3}");
    emit(id, title, "pair rank", &[m_series, j_series]);
}

/// Runs the Fig. 1 experiment.
pub fn run(scale: Scale) {
    let n = scale.updates(4000);

    // (a) NFD-like.
    let norm = workloads::nfd_like_normalizer(11);
    let mut nfd = workloads::nfd_like_boxed(&norm, 0.0, 12);
    let nfd_data = workloads::collect(&mut *nfd, n);
    one_dataset("fig1a", "Fig 1(a): merge criteria on NFD-like data", &nfd_data, 1);

    // (b) synthetic (single regime so the 8 components describe one
    // mixture).
    let mut syn = workloads::synthetic_boxed(4, 5, 0.0, 13);
    let syn_data = workloads::collect(&mut *syn, n);
    one_dataset("fig1b", "Fig 1(b): merge criteria on synthetic data", &syn_data, 2);
}
