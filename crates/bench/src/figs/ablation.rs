//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. multi-test on/off (c_max = 1 vs 4) on a recurring-regime stream;
//! 2. Nelder-Mead merge refinement vs plain moment-preserving merges at
//!    the coordinator;
//! 3. full vs diagonal covariances (time/quality/synopsis trade-off);
//! 4. Theorem 4's average-cost model `(P_d + λ(1−P_d))·C` vs measurement;
//! 5. the paper's future-work index structure for merge/split lookups;
//! 6. warm-started chunk clustering vs cold k-means++ restarts.

use crate::figs::common::{cycling_stream, paper_config, quality, RollingWindow};
use crate::table::{emit, Series};
use crate::timing::{best_of, time_it};
use crate::workloads;
use crate::Scale;
use cludistream::coordinator::MergeRefiner;
use cludistream::{horizon_mixture, Coordinator, CoordinatorConfig, Message, RemoteSite};
use cludistream_gmm::{avg_log_likelihood, fit_em, CovarianceType, EmConfig};

/// Runs every ablation.
pub fn run(scale: Scale) {
    multitest(scale);
    merge_refinement(scale);
    covariance(scale);
    theorem4(scale);
    group_index(scale);
    warm_vs_cold(scale);
}

/// Ablation 6: warm-started chunk clustering (seed EM with the current
/// model) vs cold k-means++ restarts.
fn warm_vs_cold(scale: Scale) {
    let updates = scale.updates(30_000);
    let mut rows = Vec::new();
    for (label, warm) in [("cold start (k-means++)", false), ("warm start", true)] {
        let mut config = paper_config();
        config.warm_start = warm;
        config.seed = 241;
        let mut site = RemoteSite::new(config).expect("valid config");
        let mut stream = workloads::synthetic_boxed(4, 5, 0.25, 242);
        let records = workloads::collect(&mut *stream, updates);
        let mut window = RollingWindow::new(2000);
        let (_, secs) = time_it(|| {
            for x in records {
                window.push(x.clone());
                site.push(x).expect("site processes");
            }
        });
        let q = quality(horizon_mixture(&site, 2).ok().as_ref(), &window.records());
        let s = site.stats();
        println!(
            "[ablation/warm] {label}: {secs:.2}s, {} EM runs, {} EM iterations total, \
             quality {q:.4}",
            s.clustered, s.em_iterations
        );
        let mut series = Series::new(label);
        series.push(0.0, q);
        series.push(1.0, secs);
        series.push(2.0, s.em_iterations as f64);
        rows.push(series);
    }
    emit(
        "ablation_warm",
        "Ablation: warm vs cold EM starts (rows: quality, seconds, EM iterations)",
        "metric",
        &rows,
    );
}

/// Ablation 5: the paper's future-work index structure — nearest-group
/// lookups via the cached kd-tree pre-filter vs the exact linear scan.
/// The index pays off when the group set is large and stable and exact
/// distances are expensive (high d): phase 1 builds the groups, phase 2
/// times component placements that join them.
fn group_index(_scale: Scale) {
    use cludistream::protocol::Message;
    use cludistream::remote::ModelId;
    use cludistream_gmm::{Gaussian, Mixture};
    use cludistream_linalg::Vector;

    let dim = 16usize;
    let groups = 300usize;
    let placements = 1500usize;
    let sphere = |center: f64| {
        let mut mean = Vector::zeros(dim);
        mean[0] = center;
        Mixture::single(Gaussian::spherical(mean, 1.0).expect("valid sphere"))
    };
    let mut rows = Vec::new();
    for (label, use_index) in [("linear scan", false), ("kd-tree index", true)] {
        let mut coordinator = Coordinator::new(CoordinatorConfig {
            max_groups: groups + 8,
            use_index,
            ..Default::default()
        }).unwrap();
        // Phase 1: build the group set (untimed).
        for g in 0..groups {
            coordinator
                .apply(&Message::NewModel {
                    site: 0,
                    model: ModelId(g as u64),
                    count: 100,
                    avg_ll: -1.0,
                    mixture: sphere(g as f64 * 25.0),
                })
                .expect("valid update");
        }
        assert_eq!(coordinator.group_count(), groups);
        // Phase 2: placements that join existing groups (timed).
        let (_, secs) = time_it(|| {
            for p in 0..placements {
                let target = (p * 97) % groups;
                coordinator
                    .apply(&Message::NewModel {
                        site: 1,
                        model: ModelId(p as u64),
                        count: 10,
                        avg_ll: -1.0,
                        mixture: sphere(target as f64 * 25.0 + 0.3),
                    })
                    .expect("valid update");
            }
        });
        println!(
            "[ablation/index] {label}: {secs:.3}s to place {placements} components over \
             {groups} groups (d={dim}, {} groups after)",
            coordinator.group_count()
        );
        let mut s = Series::new(label);
        s.push(placements as f64, secs);
        rows.push(s);
    }
    emit("ablation_index", "Ablation: nearest-group lookup acceleration", "placements", &rows);
}

/// Ablation 1: multi-test on/off.
fn multitest(scale: Scale) {
    let updates = scale.updates(30_000);
    let mut rows = Vec::new();
    for (label, c_max) in [("multi-test off (c_max=1)", 1usize), ("multi-test on (c_max=4)", 4)] {
        let mut config = paper_config();
        config.c_max = c_max;
        config.seed = 201;
        let mut site = RemoteSite::new(config).expect("valid config");
        let records: Vec<_> =
            cycling_stream(4, 5, 4, 2 * site.chunk_size(), 202).take(updates).collect();
        let (_, secs) = time_it(|| {
            for x in records {
                site.push(x).expect("site processes");
            }
        });
        let s = site.stats();
        println!(
            "[ablation/multitest] {label}: {secs:.2}s, {} EM runs, {} model switches, \
             {} models in list",
            s.clustered,
            s.switched,
            site.models().len()
        );
        let mut series = Series::new(label);
        series.push(c_max as f64, s.clustered as f64);
        rows.push(series);
    }
    emit("ablation_multitest", "Ablation: EM clusterings with/without multi-test", "c_max", &rows);
}

/// Ablation 2: merge refinement on/off at the coordinator.
fn merge_refinement(scale: Scale) {
    let updates_per_site = scale.updates(2);
    let mut rows = Vec::new();
    for (label, refine) in [("moment merge", false), ("simplex-refined merge", true)] {
        let mut coordinator = Coordinator::new(CoordinatorConfig {
            max_groups: 5,
            refine_merges: refine,
            refiner: MergeRefiner { samples: 256, max_evals: 600, seed: 211 },
            ..Default::default()
        }).unwrap();
        let r = 10;
        let config = paper_config();
        let mut sites: Vec<RemoteSite> = (0..r)
            .map(|i| {
                let mut c = config.clone();
                c.seed = 300 + i as u64;
                RemoteSite::new(c).expect("valid config")
            })
            .collect();
        let mut streams: Vec<_> =
            (0..r).map(|i| workloads::synthetic_boxed(4, 5, 0.1, 400 + i as u64)).collect();
        let mut window = RollingWindow::new(4000);
        let chunk = sites[0].chunk_size();
        for _round in 0..updates_per_site.max(2) {
            for (i, site) in sites.iter_mut().enumerate() {
                for _ in 0..chunk {
                    let x = streams[i].next().expect("infinite stream");
                    window.push(x.clone());
                    site.push(x).expect("site processes");
                }
                for ev in site.drain_events() {
                    coordinator
                        .apply(&Message::from_site_event(i as u32, ev))
                        .expect("valid update");
                }
            }
        }
        let q = quality(coordinator.global_mixture().ok().as_ref(), &window.records());
        println!(
            "[ablation/merge] {label}: global avg log likelihood = {q:.4} over {} groups",
            coordinator.group_count()
        );
        let mut s = Series::new(label);
        s.push(0.0, q);
        rows.push(s);
    }
    emit("ablation_merge", "Ablation: coordinator quality by merge strategy", "-", &rows);
}

/// Ablation 3: full vs diagonal covariance.
fn covariance(scale: Scale) {
    let updates = scale.updates(20_000);
    let mut rows = Vec::new();
    for (label, cov) in
        [("full covariance", CovarianceType::Full), ("diagonal covariance", CovarianceType::Diagonal)]
    {
        let mut config = paper_config();
        config.covariance = cov;
        config.seed = 221;
        let mut site = RemoteSite::new(config).expect("valid config");
        let horizon_chunks = 2;
        let mut stream = workloads::synthetic_boxed(4, 5, 0.25, 222);
        let records = workloads::collect(&mut *stream, updates);
        let mut window = RollingWindow::new(2000);
        let (_, secs) = time_it(|| {
            for x in records {
                window.push(x.clone());
                site.push(x).expect("site processes");
            }
        });
        let q = quality(horizon_mixture(&site, horizon_chunks).ok().as_ref(), &window.records());
        println!(
            "[ablation/covariance] {label}: {secs:.2}s, quality {q:.4}, memory {} bytes",
            site.memory_bytes()
        );
        let mut s = Series::new(label);
        s.push(0.0, q);
        s.push(1.0, secs);
        s.push(2.0, site.memory_bytes() as f64);
        rows.push(s);
    }
    emit(
        "ablation_covariance",
        "Ablation: full vs diagonal covariance (rows: quality, seconds, bytes)",
        "metric",
        &rows,
    );
}

/// Ablation 4: validate Theorem 4's cost model. Measures C (clustering a
/// chunk) and λC (testing a chunk), then compares the predicted average
/// cost `(P_d + λ(1−P_d))·C` against the measured per-chunk cost at
/// several P_d values.
fn theorem4(scale: Scale) {
    let config = paper_config();
    let site = RemoteSite::new(config.clone()).expect("valid config");
    let m = site.chunk_size();

    // Measure C and λ on a representative chunk.
    let mut stream = workloads::synthetic_boxed(4, 5, 0.0, 231);
    let chunk = workloads::collect(&mut *stream, m);
    let em_cfg = EmConfig { k: config.k, seed: 232, ..Default::default() };
    let fit = fit_em(&chunk, &em_cfg).expect("EM fits");
    let c_cost = best_of(3, || {
        let _ = fit_em(&chunk, &em_cfg);
    });
    let test_cost = best_of(3, || {
        let _ = avg_log_likelihood(&fit.mixture, &chunk);
    });
    let lambda = test_cost / c_cost.max(1e-12);
    println!(
        "[ablation/theorem4] C = {c_cost:.4}s per chunk, test = {test_cost:.5}s, λ = {lambda:.4}"
    );

    let updates = scale.updates(20_000);
    let mut predicted = Series::new("predicted s/chunk (Thm 4)");
    let mut measured = Series::new("measured s/chunk");
    for p_d in [0.1, 0.5, 1.0] {
        let mut site = RemoteSite::new(config.clone()).expect("valid config");
        let mut stream = workloads::synthetic_boxed(4, 5, p_d, 233);
        let records = workloads::collect(&mut *stream, updates);
        let (_, secs) = time_it(|| {
            for x in records {
                let _ = site.push(x);
            }
        });
        let chunks = site.stats().chunks.max(1) as f64;
        // Effective new-distribution rate actually observed (regime changes
        // only occur at 2000-record boundaries, so the per-chunk rate
        // differs from the raw P_d).
        let observed_pd = site.stats().clustered as f64 / chunks;
        let pred = cludistream_gmm::chunk::average_processing_cost(c_cost, lambda, observed_pd);
        predicted.push(p_d, pred);
        measured.push(p_d, secs / chunks);
        println!(
            "[ablation/theorem4] P_d={p_d}: observed per-chunk cluster rate {observed_pd:.3}, \
             predicted {pred:.4}s, measured {:.4}s",
            secs / chunks
        );
    }
    emit("ablation_theorem4", "Ablation: Theorem 4 cost model", "P_d", &[predicted, measured]);
}
