//! Figure 2: cumulative communication cost vs time, CluDistream vs the
//! periodic SEM-reporting strategy, on (a) NFD-like data and (b) synthetic
//! data with P_d swept from 0.1 to 0.5.
//!
//! Expected shape (paper): CluDistream's curve flattens once the models
//! have learned the distributions; the periodic strategy grows linearly
//! forever; larger P_d raises CluDistream's curve but it stays below SEM.

use crate::figs::common::paper_config_dim;
use crate::table::{emit, Series};
use crate::workloads;
use crate::Scale;
use cludistream::{DriverConfig, RecordStream, Simulation};
use cludistream_baselines::periodic::{run_periodic_star, PeriodicConfig};
use cludistream_baselines::SemConfig;

const SITES: usize = 20;

fn cumulative_series(name: &str, per_second_cumulative: &[u64], sim_seconds: f64) -> Series {
    let mut s = Series::new(name);
    let mut last = 0.0;
    for (sec, &bytes) in per_second_cumulative.iter().enumerate() {
        last = bytes as f64;
        s.push(sec as f64, last);
    }
    // Pad the flat tail out to the end of the run so stability is visible.
    for sec in per_second_cumulative.len()..=(sim_seconds.ceil() as usize) {
        s.push(sec as f64, last);
    }
    s
}

fn cludistream_run(streams: Vec<RecordStream>, updates: u64, dim: usize) -> Series {
    let config = DriverConfig { site: paper_config_dim(dim), ..Default::default() };
    let report = Simulation::star(streams.len())
        .with_driver_config(config)
        .with_streams(streams)
        .with_updates_per_site(updates)
        .run()
        .expect("simulation runs");
    cumulative_series("CluDistream", &report.comm.cumulative_per_second(), report.sim_seconds)
}

fn periodic_run(streams: Vec<RecordStream>, updates: u64) -> Series {
    let config = PeriodicConfig {
        sem: SemConfig { k: 5, buffer_size: 1000, seed: 3, ..Default::default() },
        period_records: 2000,
        ..Default::default()
    };
    let report = run_periodic_star(streams, updates, config).expect("simulation runs");
    cumulative_series("SEM (periodic)", &report.comm.cumulative_per_second(), report.sim_seconds)
}

/// Runs the Fig. 2 experiment.
pub fn run(scale: Scale) {
    let updates = scale.updates(6000) as u64; // per site

    // (a) NFD-like.
    let norm = workloads::nfd_like_normalizer(21);
    let clu_streams: Vec<RecordStream> =
        (0..SITES).map(|i| workloads::nfd_like_boxed(&norm, 0.05, 100 + i as u64)).collect();
    let sem_streams: Vec<RecordStream> =
        (0..SITES).map(|i| workloads::nfd_like_boxed(&norm, 0.05, 100 + i as u64)).collect();
    let clu = cludistream_run(clu_streams, updates, workloads::NFD_DIM);
    let sem = periodic_run(sem_streams, updates);
    emit("fig2a", "Fig 2(a): cumulative communication, NFD-like", "seconds", &[clu, sem]);

    // (b) synthetic, sweeping P_d. The three runs are independent
    // simulations measuring byte counts (not wall time), so they fan out
    // across threads.
    let mut series = crate::parallel::par_map(vec![0.1, 0.3, 0.5], |p_d| {
        let streams: Vec<RecordStream> =
            (0..SITES).map(|i| workloads::synthetic_boxed(4, 5, p_d, 200 + i as u64)).collect();
        let mut s = cludistream_run(streams, updates, 4);
        s.name = format!("CluDistream P_d={p_d}");
        s
    });
    let sem_streams: Vec<RecordStream> =
        (0..SITES).map(|i| workloads::synthetic_boxed(4, 5, 0.1, 200 + i as u64)).collect();
    series.push(periodic_run(sem_streams, updates));
    emit("fig2b", "Fig 2(b): cumulative communication, synthetic", "seconds", &series);

    // Shape check the paper reports: CluDistream total << periodic total.
    let clu_total = series[0].last_y().unwrap_or(0.0);
    let sem_total = series.last().and_then(|s| s.last_y()).unwrap_or(0.0);
    println!(
        "CluDistream(P_d=0.1) vs periodic SEM total bytes: {clu_total:.0} vs {sem_total:.0} \
         ({:.1}x saving)",
        sem_total / clu_total.max(1.0)
    );
}
