//! Figures 3 and 4: histograms of the 1-d synthetic stream in a horizon
//! H=2k at three time points (Fig. 3) and the corresponding CluDistream
//! fitted densities (Fig. 4), including the 5% noise variant (Fig. 4(d)).

use crate::figs::common::RollingWindow;
use crate::table::{emit, Series};
use crate::Scale;
use cludistream::{horizon_mixture, Config, RemoteSite};
use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig, Histogram, NoiseInjector};
use cludistream_gmm::ChunkParams;
use cludistream_linalg::Vector;

const HORIZON: usize = 2000;
const BINS: usize = 40;
const RANGE: (f64, f64) = (-15.0, 15.0);

fn one_d_stream(seed: u64) -> EvolvingStream {
    EvolvingStream::new(EvolvingStreamConfig {
        dim: 1,
        k: 3,
        p_new: 1.0, // a fresh distribution at every boundary: three clearly
        // different time points, as in the paper's figure
        regime_len: HORIZON,
        seed,
        ..Default::default()
    })
}

fn histogram_series(name: &str, window: &[Vector]) -> Series {
    let mut h = Histogram::new(RANGE.0, RANGE.1, BINS);
    h.add_records(window, 0);
    let mut s = Series::new(name);
    for (i, d) in h.density().iter().enumerate() {
        s.push(h.bin_center(i), *d);
    }
    s
}

/// Runs the Fig. 3 experiment: data histograms at three time points.
pub fn run_fig3(_scale: Scale) {
    let mut stream = one_d_stream(31);
    let mut series = Vec::new();
    for t in 1..=3 {
        let window = stream.take_chunk(HORIZON);
        series.push(histogram_series(&format!("t{t} density"), &window));
    }
    emit("fig3", "Fig 3: histograms of 1-d synthetic data (H=2k)", "x", &series);
}

/// Runs the Fig. 4 experiment: CluDistream fitted densities at the same
/// time points, plus the 5% noise variant.
pub fn run_fig4(_scale: Scale) {
    let config = Config {
        dim: 1,
        k: 3,
        chunk: ChunkParams { epsilon: 0.02, delta: 0.01 },
        seed: 32,
        ..Default::default()
    };

    let run = |noisy: bool, label: &str, out: &mut Vec<Series>| {
        let mut site = RemoteSite::new(config.clone()).expect("valid config");
        let m = site.chunk_size();
        let horizon_chunks = (HORIZON as u64).div_ceil(m as u64).max(1);
        let base = one_d_stream(31);
        let mut stream: Box<dyn Iterator<Item = Vector> + Send> = if noisy {
            Box::new(NoiseInjector::new(base, 0.05, RANGE, 33))
        } else {
            Box::new(base)
        };
        let mut window = RollingWindow::new(HORIZON);
        for t in 1..=3 {
            for _ in 0..HORIZON {
                let x = stream.next().expect("infinite stream");
                window.push(x.clone());
                site.push(x).expect("clean records");
            }
            // Capture the fitted density at this time point (t3 only for
            // the noisy variant, matching Fig. 4(d)).
            if noisy && t < 3 {
                continue;
            }
            let mix = horizon_mixture(&site, horizon_chunks).expect("model exists");
            let mut s = Series::new(format!("{label} t{t} fitted"));
            let h = Histogram::new(RANGE.0, RANGE.1, BINS);
            for i in 0..BINS {
                let x = h.bin_center(i);
                s.push(x, mix.pdf(&Vector::from_slice(&[x])));
            }
            out.push(s);
            // Report how well the fit matches the raw window (quality
            // context for the figure).
            let avg = mix.avg_log_likelihood(&window.records());
            println!("[fig4] {label} t{t}: avg log likelihood over window = {avg:.4}");
        }
    };

    let mut series = Vec::new();
    run(false, "clean", &mut series);
    run(true, "5% noise", &mut series);
    emit("fig4", "Fig 4: CluDistream fitted densities (H=2k)", "x", &series);
}
