//! One module per figure of the paper's evaluation (Sec. 6), plus the
//! ablations DESIGN.md calls out.

mod ablation;
mod common;
mod fig01;
mod fig02;
mod fig03_04;
mod fig05_07;
mod fig08_10;
mod fig11_14;

use crate::Scale;

pub use common::RollingWindow;

/// All experiment ids in run order.
pub const ALL: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "ablation",
];

/// Runs one experiment by id. Returns false for unknown ids.
pub fn run(id: &str, scale: Scale) -> bool {
    match id {
        "fig1" => fig01::run(scale),
        "fig2" => fig02::run(scale),
        "fig3" => fig03_04::run_fig3(scale),
        "fig4" => fig03_04::run_fig4(scale),
        "fig5" => fig05_07::run_fig5(scale),
        "fig6" => fig05_07::run_fig6(scale),
        "fig7" => fig05_07::run_fig7(scale),
        "fig8" => fig08_10::run_fig8(scale),
        "fig9" => fig08_10::run_fig9(scale),
        "fig10" => fig08_10::run_fig10(scale),
        "fig11" => fig11_14::run_fig11(scale),
        "fig12" => fig11_14::run_fig12(scale),
        "fig13" => fig11_14::run_fig13(scale),
        "fig14" => fig11_14::run_fig14(scale),
        "ablation" => ablation::run(scale),
        _ => return false,
    }
    true
}
