//! Shared helpers for the figure experiments.

use cludistream::Config;
use cludistream_gmm::{ChunkParams, Mixture};
use cludistream_linalg::Vector;
use std::collections::VecDeque;

/// The paper's default remote-site configuration (Sec. 6): δ=0.01, ε=0.02,
/// d=4, K=5, c_max=4.
pub fn paper_config() -> Config {
    Config {
        dim: 4,
        k: 5,
        chunk: ChunkParams { epsilon: 0.02, delta: 0.01 },
        c_max: 4,
        seed: 7,
        ..Default::default()
    }
}

/// Paper configuration adjusted to another dimensionality (NFD-like d=6,
/// or the d sweeps).
pub fn paper_config_dim(dim: usize) -> Config {
    Config { dim, ..paper_config() }
}

/// A bounded window of the most recent records — the evaluation data for
/// horizon-quality figures.
#[derive(Debug)]
pub struct RollingWindow {
    cap: usize,
    buf: VecDeque<Vector>,
}

impl RollingWindow {
    /// Creates a window holding the last `cap` records.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        RollingWindow { cap, buf: VecDeque::with_capacity(cap) }
    }

    /// Pushes a record, evicting the oldest when full.
    pub fn push(&mut self, x: Vector) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Records currently held (oldest first).
    pub fn records(&self) -> Vec<Vector> {
        self.buf.iter().cloned().collect()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Average log likelihood of `data` under an optional model; `NaN` when
/// there is no model or no data (renders as a gap rather than skewing the
/// series).
pub fn quality(model: Option<&Mixture>, data: &[Vector]) -> f64 {
    match model {
        Some(m) if !data.is_empty() => m.avg_log_likelihood(data),
        _ => f64::NAN,
    }
}

/// A stream cycling deterministically through `n_regimes` random mixtures,
/// `records_per_regime` records at a time — the workload where the
/// multi-test strategy shines (alternating distributions, Sec. 5.1.2).
pub fn cycling_stream(
    dim: usize,
    k: usize,
    n_regimes: usize,
    records_per_regime: usize,
    seed: u64,
) -> impl Iterator<Item = Vector> {
    use cludistream_datagen::{random_mixture, MixtureGenConfig};
    use cludistream_rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = MixtureGenConfig { dim, k, ..Default::default() };
    let regimes: Vec<Mixture> = (0..n_regimes).map(|_| random_mixture(&cfg, &mut rng)).collect();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        let regime = (i / records_per_regime) % regimes.len();
        i += 1;
        Some(regimes[regime].sample(&mut rng))
    })
}

/// A cycling stream whose regimes are *well-separated spherical* mixtures
/// at deterministic positions: every regime has the same clustering
/// difficulty, so scalability sweeps (Fig. 9) measure per-operation cost
/// rather than EM convergence luck.
pub fn separated_cycling_stream(
    dim: usize,
    k: usize,
    n_regimes: usize,
    records_per_regime: usize,
    seed: u64,
) -> impl Iterator<Item = Vector> {
    use cludistream_gmm::Gaussian;
    use cludistream_rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let regimes: Vec<Mixture> = (0..n_regimes)
        .map(|r| {
            let comps: Vec<Gaussian> = (0..k)
                .map(|i| {
                    let mut mean = Vector::zeros(dim);
                    // Regimes offset along axis 0; components spread along
                    // axis 0 (and axis 1 when present) with gap 12σ.
                    mean[0] = (r * 1000) as f64 + (i as f64) * 12.0;
                    if dim > 1 {
                        mean[1] = (i as f64) * 5.0;
                    }
                    Gaussian::spherical(mean, 1.0).expect("valid sphere")
                })
                .collect();
            Mixture::uniform(comps).expect("valid mixture")
        })
        .collect();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        let regime = (i / records_per_regime) % regimes.len();
        i += 1;
        Some(regimes[regime].sample(&mut rng))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_window_evicts_oldest() {
        let mut w = RollingWindow::new(2);
        w.push(Vector::from_slice(&[1.0]));
        w.push(Vector::from_slice(&[2.0]));
        w.push(Vector::from_slice(&[3.0]));
        let r = w.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0][0], 2.0);
        assert_eq!(r[1][0], 3.0);
        assert!(!w.is_empty());
    }

    #[test]
    fn quality_nan_without_model_or_data() {
        assert!(quality(None, &[Vector::zeros(1)]).is_nan());
        let m = Mixture::single(
            cludistream_gmm::Gaussian::spherical(Vector::zeros(1), 1.0).unwrap(),
        );
        assert!(quality(Some(&m), &[]).is_nan());
        assert!(quality(Some(&m), &[Vector::zeros(1)]).is_finite());
    }

    #[test]
    fn cycling_stream_revisits_regimes() {
        let recs: Vec<Vector> = cycling_stream(1, 1, 2, 50, 1).take(200).collect();
        // Records 0..50 and 100..150 come from the same regime; their means
        // should agree far better than across regimes.
        let mean = |s: &[Vector]| s.iter().map(|x| x[0]).sum::<f64>() / s.len() as f64;
        let (a1, b, a2) = (mean(&recs[..50]), mean(&recs[50..100]), mean(&recs[100..150]));
        assert!((a1 - a2).abs() < (a1 - b).abs(), "a1={a1} b={b} a2={a2}");
    }

    #[test]
    fn paper_config_is_paper() {
        let c = paper_config();
        assert_eq!((c.dim, c.k, c.c_max), (4, 5, 4));
        assert_eq!(c.chunk.epsilon, 0.02);
        assert_eq!(paper_config_dim(6).dim, 6);
    }
}
