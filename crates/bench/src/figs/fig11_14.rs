//! Figures 11-14: parameter sensitivity — ε (Fig. 11), δ (Fig. 12),
//! c_max (Fig. 13), and P_d (Fig. 14).

use crate::figs::common::{cycling_stream, paper_config, quality, RollingWindow};
use crate::table::{emit, Series};
use crate::timing::time_it;
use crate::workloads;
use crate::Scale;
use cludistream::{horizon_mixture, RemoteSite};
use cludistream_baselines::{ScalableEm, SemConfig};

const HORIZON: usize = 2000;

/// Feeds `updates` synthetic records to a site with the given config,
/// returning `(wall seconds, mean horizon quality, SEM quality)`.
fn sensitivity_run(
    mut config: cludistream::Config,
    updates: usize,
    seed: u64,
) -> (f64, f64, f64) {
    config.seed = seed;
    let mut site = RemoteSite::new(config).expect("valid config");
    let horizon_chunks = (HORIZON as u64).div_ceil(site.chunk_size() as u64).max(1);
    let mut sem =
        ScalableEm::new(SemConfig { k: 5, buffer_size: 1000, seed, ..Default::default() })
            .expect("valid SEM config");
    let mut stream = workloads::synthetic_stream(4, 5, 0.25, seed ^ 0xABCD);
    let mut window = RollingWindow::new(HORIZON);

    let mut clu_quality = Vec::new();
    let mut sem_quality = Vec::new();
    let mut records = Vec::with_capacity(updates);
    for _ in 0..updates {
        records.push(stream.next().expect("infinite stream"));
    }
    let (_, secs) = time_it(|| {
        for (i, x) in records.into_iter().enumerate() {
            window.push(x.clone());
            sem.push(x.clone()).expect("SEM processes");
            site.push(x).expect("site processes");
            if (i + 1) % HORIZON == 0 {
                let data = window.records();
                let q = quality(horizon_mixture(&site, horizon_chunks).ok().as_ref(), &data);
                if q.is_finite() {
                    clu_quality.push(q);
                }
                let qs = quality(sem.mixture(), &data);
                if qs.is_finite() {
                    sem_quality.push(qs);
                }
            }
        }
    });
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (secs, mean(&clu_quality), mean(&sem_quality))
}

/// Runs the Fig. 11 experiment: ε sensitivity.
pub fn run_fig11(scale: Scale) {
    let updates = scale.updates(30_000);
    let mut q_clu = Series::new("CluDistream quality");
    let mut q_sem = Series::new("SEM quality");
    let mut time = Series::new("CluDistream time (s)");
    for eps in [0.01, 0.02, 0.04, 0.06, 0.08, 0.10] {
        let mut config = paper_config();
        config.chunk.epsilon = eps;
        let (secs, clu, sem) = sensitivity_run(config, updates, 111);
        q_clu.push(eps, clu);
        q_sem.push(eps, sem);
        time.push(eps, secs);
    }
    emit("fig11a", "Fig 11(a): quality vs epsilon", "epsilon", &[q_clu, q_sem]);
    emit("fig11b", "Fig 11(b): processing time vs epsilon", "epsilon", &[time]);
}

/// Runs the Fig. 12 experiment: δ sensitivity.
pub fn run_fig12(scale: Scale) {
    let updates = scale.updates(30_000);
    let mut q_clu = Series::new("CluDistream quality");
    let mut q_sem = Series::new("SEM quality");
    let mut time = Series::new("CluDistream time (s)");
    for delta in [0.01, 0.02, 0.04, 0.07, 0.10] {
        let mut config = paper_config();
        config.chunk.delta = delta;
        let (secs, clu, sem) = sensitivity_run(config, updates, 121);
        q_clu.push(delta, clu);
        q_sem.push(delta, sem);
        time.push(delta, secs);
    }
    emit("fig12a", "Fig 12(a): quality vs delta", "delta", &[q_clu, q_sem]);
    emit("fig12b", "Fig 12(b): processing time vs delta", "delta", &[time]);
}

/// Runs the Fig. 13 experiment: c_max sensitivity on an alternating
/// (cycling-regime) stream where the multi-test strategy matters.
pub fn run_fig13(scale: Scale) {
    let updates = scale.updates(40_000);
    let mut time = Series::new("CluDistream time (s)");
    let mut em_runs = Series::new("EM clusterings");
    for c_max in 1..=7usize {
        let mut config = paper_config();
        config.c_max = c_max;
        config.seed = 131;
        let mut site = RemoteSite::new(config).expect("valid config");
        // Four recurring regimes, one chunk each: re-fitting the cycle's
        // oldest model requires testing 3 list models, so reuse kicks in at
        // c_max = 4 (the paper's reported optimum is 3-4); larger c_max
        // only adds test cost.
        let records: Vec<_> =
            cycling_stream(4, 5, 4, site.chunk_size(), 132).take(updates).collect();
        let (_, secs) = time_it(|| {
            for x in records {
                site.push(x).expect("site processes");
            }
        });
        time.push(c_max as f64, secs);
        em_runs.push(c_max as f64, site.stats().clustered as f64);
    }
    emit(
        "fig13",
        "Fig 13: processing time vs c_max (alternating regimes)",
        "c_max",
        &[time, em_runs],
    );
}

/// Runs the Fig. 14 experiment: time vs the new-distribution probability.
pub fn run_fig14(scale: Scale) {
    let updates = scale.updates(30_000);
    let mut time = Series::new("CluDistream time (s)");
    let mut em_runs = Series::new("EM clusterings");
    for p_d in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let config = paper_config();
        let mut site = RemoteSite::new(config).expect("valid config");
        let mut stream = workloads::synthetic_boxed(4, 5, p_d, 141);
        let records = workloads::collect(&mut *stream, updates);
        let (_, secs) = time_it(|| {
            for x in records {
                site.push(x).expect("site processes");
            }
        });
        time.push(p_d, secs);
        em_runs.push(p_d, site.stats().clustered as f64);
    }
    emit("fig14", "Fig 14: processing time vs P_d", "P_d", &[time, em_runs]);
}
