//! Figures 5-7: clustering quality (average log likelihood, Definition 1).
//!
//! - Fig. 5: quality in a *horizon* at successive time points, CluDistream
//!   vs SEM on a remote site. CluDistream keeps one model per
//!   distribution; SEM squeezes every regime into one model.
//! - Fig. 6: quality in a *landmark window*: CluDistream vs SEM vs
//!   sampling-based EM.
//! - Fig. 7: quality at the *coordinator* vs a centralized SEM fed all
//!   updates, on (a) NFD-like and (b) synthetic streams.

use crate::figs::common::{paper_config, paper_config_dim, quality, RollingWindow};
use crate::table::{emit, Series};
use crate::workloads;
use crate::Scale;
use cludistream::{horizon_mixture, landmark_mixture, Coordinator, CoordinatorConfig, Message, RemoteSite};
use cludistream_baselines::{SamplingEm, SamplingEmConfig, ScalableEm, SemConfig};
use cludistream_baselines::ReservoirSampler;
use cludistream_linalg::Vector;
use cludistream_rng::StdRng;

const HORIZON: usize = 2000;

/// Runs the Fig. 5 experiment: horizon quality over time.
pub fn run_fig5(scale: Scale) {
    let checkpoints = scale.updates(20);
    let config = paper_config();
    let mut site = RemoteSite::new(config.clone()).expect("valid config");
    let horizon_chunks = (HORIZON as u64).div_ceil(site.chunk_size() as u64).max(1);
    let mut sem = ScalableEm::new(SemConfig { k: config.k, buffer_size: 1000, seed: 5, ..Default::default() })
        .expect("valid SEM config");
    let mut stream = workloads::synthetic_stream(4, 5, 0.25, 53);
    let mut window = RollingWindow::new(HORIZON);

    let mut clu = Series::new("CluDistream");
    let mut sem_series = Series::new("SEM");
    for t in 1..=checkpoints {
        for _ in 0..HORIZON {
            let x = stream.next().expect("infinite stream");
            window.push(x.clone());
            sem.push(x.clone()).expect("SEM processes");
            site.push(x).expect("site processes");
        }
        let data = window.records();
        let clu_model = horizon_mixture(&site, horizon_chunks).ok();
        clu.push(t as f64, quality(clu_model.as_ref(), &data));
        sem_series.push(t as f64, quality(sem.mixture(), &data));
    }
    summarize_gap("fig5", &clu, &sem_series);
    emit("fig5", "Fig 5: horizon quality over time (synthetic)", "time point", &[clu, sem_series]);
}

/// Runs the Fig. 6 experiment: landmark-window quality over time.
pub fn run_fig6(scale: Scale) {
    let checkpoints = scale.updates(20);
    let config = paper_config();
    let mut site = RemoteSite::new(config.clone()).expect("valid config");
    let mut sem = ScalableEm::new(SemConfig { k: config.k, buffer_size: 1000, seed: 6, ..Default::default() })
        .expect("valid SEM config");
    let mut sampler = SamplingEm::new(SamplingEmConfig {
        k: config.k,
        sample_size: 1000,
        refit_interval: 2000,
        seed: 6,
        ..Default::default()
    })
    .expect("valid sampling config");
    let mut stream = workloads::synthetic_stream(4, 5, 0.25, 63);
    // Landmark evaluation set: a uniform reservoir over everything seen.
    let mut eval = ReservoirSampler::new(2000);
    let mut rng = StdRng::seed_from_u64(62);

    let mut clu = Series::new("CluDistream");
    let mut sem_series = Series::new("SEM");
    let mut samp = Series::new("sampling EM");
    for t in 1..=checkpoints {
        for _ in 0..HORIZON {
            let x = stream.next().expect("infinite stream");
            eval.offer(x.clone(), &mut rng);
            sem.push(x.clone()).expect("SEM processes");
            sampler.push(x.clone()).expect("sampler processes");
            site.push(x).expect("site processes");
        }
        let data: Vec<Vector> = eval.items().to_vec();
        clu.push(t as f64, quality(landmark_mixture(&site).ok().as_ref(), &data));
        sem_series.push(t as f64, quality(sem.mixture(), &data));
        samp.push(t as f64, quality(sampler.mixture(), &data));
    }
    summarize_gap("fig6", &clu, &sem_series);
    emit(
        "fig6",
        "Fig 6: landmark-window quality over time (synthetic)",
        "time point",
        &[clu, sem_series, samp],
    );
}

/// Runs the Fig. 7 experiment: coordinator quality vs centralized SEM.
pub fn run_fig7(scale: Scale) {
    // (a) NFD-like.
    let norm = workloads::nfd_like_normalizer(71);
    let nfd_streams: Vec<Box<dyn Iterator<Item = Vector> + Send>> =
        (0..20).map(|i| workloads::nfd_like_boxed(&norm, 0.05, 730 + i as u64)).collect();
    let series_a = coordinator_run(nfd_streams, workloads::NFD_DIM, scale.updates(8), 72);
    emit("fig7a", "Fig 7(a): coordinator quality, NFD-like (r=20)", "time point", &series_a);

    // (b) synthetic.
    let syn_streams: Vec<Box<dyn Iterator<Item = Vector> + Send>> =
        (0..20).map(|i| workloads::synthetic_boxed(4, 5, 0.1, 830 + i as u64)).collect();
    let series_b = coordinator_run(syn_streams, 4, scale.updates(8), 73);
    summarize_gap("fig7b", &series_b[0], &series_b[1]);
    emit("fig7b", "Fig 7(b): coordinator quality, synthetic (r=20)", "time point", &series_b);
}

/// Shared machinery for Fig. 7: r sites feed a coordinator; a centralized
/// SEM sees every record; both are scored on a pooled recent-record
/// window at each checkpoint.
fn coordinator_run(
    mut streams: Vec<Box<dyn Iterator<Item = Vector> + Send>>,
    dim: usize,
    checkpoints: usize,
    seed: u64,
) -> Vec<Series> {
    let r = streams.len();
    let config = paper_config_dim(dim);
    let mut sites: Vec<RemoteSite> =
        (0..r)
            .map(|i| {
                let mut c = config.clone();
                c.seed = c.seed.wrapping_add(i as u64 * 7919);
                RemoteSite::new(c).expect("valid config")
            })
            .collect();
    let mut coordinator = Coordinator::new(CoordinatorConfig {
        max_groups: 8,
        refine_merges: true,
        ..Default::default()
    }).unwrap();
    let mut central_sem = ScalableEm::new(SemConfig {
        k: config.k,
        buffer_size: 2000,
        seed,
        ..Default::default()
    })
    .expect("valid SEM config");
    let mut window = RollingWindow::new(4000);

    // Per checkpoint, feed one chunk's worth of records to every site so
    // the coordinator sees fresh synopses regularly.
    let batch = sites[0].chunk_size();
    let mut clu = Series::new("CluDistream coordinator");
    let mut sem = Series::new("centralized SEM");
    for t in 1..=checkpoints {
        for (i, site) in sites.iter_mut().enumerate() {
            for _ in 0..batch {
                let x = streams[i].next().expect("infinite stream");
                window.push(x.clone());
                central_sem.push(x.clone()).expect("SEM processes");
                site.push(x).expect("site processes");
            }
            for ev in site.drain_events() {
                coordinator
                    .apply(&Message::from_site_event(i as u32, ev))
                    .expect("valid update");
            }
        }
        let data = window.records();
        clu.push(t as f64, quality(coordinator.global_mixture().ok().as_ref(), &data));
        sem.push(t as f64, quality(central_sem.mixture(), &data));
    }
    vec![clu, sem]
}

/// Prints the average quality gap between two series (positive = first
/// wins), ignoring NaN gaps.
fn summarize_gap(id: &str, a: &Series, b: &Series) {
    let diffs: Vec<f64> = a
        .points
        .iter()
        .zip(&b.points)
        .filter_map(|(&(_, ya), &(_, yb))| {
            (ya.is_finite() && yb.is_finite()).then_some(ya - yb)
        })
        .collect();
    if diffs.is_empty() {
        return;
    }
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let wins = diffs.iter().filter(|&&d| d > 0.0).count();
    println!(
        "[{id}] {} beats {} at {}/{} checkpoints; mean avg-log-likelihood gap = {mean:+.4}",
        a.name,
        b.name,
        wins,
        diffs.len()
    );
}
