//! Standard workloads matching the paper's experimental setting (Sec. 6):
//! synthetic evolving-GMM streams (default d=4, K=5, P_d=0.1, new
//! distribution opportunity every 2K points) and the NFD-like normalized
//! net-flow stream.

use cludistream::RecordStream;
use cludistream_datagen::{
    EvolvingStream, EvolvingStreamConfig, MinMaxNormalizer, NetflowConfig, NetflowGenerator,
    NoiseInjector,
};
use cludistream_linalg::Vector;

/// The paper's default synthetic stream: d-dimensional, K natural
/// clusters, regime-change probability `p_d` every 2000 records.
pub fn synthetic_stream(dim: usize, k: usize, p_d: f64, seed: u64) -> EvolvingStream {
    EvolvingStream::new(EvolvingStreamConfig {
        dim,
        k,
        p_new: p_d,
        regime_len: 2000,
        seed,
        ..Default::default()
    })
}

/// Boxed synthetic stream for the simulation drivers.
pub fn synthetic_boxed(dim: usize, k: usize, p_d: f64, seed: u64) -> RecordStream {
    Box::new(synthetic_stream(dim, k, p_d, seed))
}

/// Synthetic stream with 5% uniform noise (the Fig. 4(d) corruption).
pub fn noisy_synthetic_boxed(dim: usize, k: usize, p_d: f64, seed: u64) -> RecordStream {
    let base = synthetic_stream(dim, k, p_d, seed);
    Box::new(NoiseInjector::new(base, 0.05, (-15.0, 15.0), seed ^ 0xD00D))
}

/// The NFD substitute: six normalized net-flow attributes. A shared
/// normalizer is fitted on a warmup sample (the paper normalizes each
/// attribute).
pub fn nfd_like_normalizer(seed: u64) -> MinMaxNormalizer {
    let mut warm = NetflowGenerator::new(NetflowConfig { seed, ..Default::default() });
    let sample = warm.take_chunk(5_000);
    MinMaxNormalizer::fit(&sample)
}

/// One normalized NFD-like stream.
pub fn nfd_like_boxed(normalizer: &MinMaxNormalizer, p_new: f64, seed: u64) -> RecordStream {
    let gen = NetflowGenerator::new(NetflowConfig { seed, p_new, ..Default::default() });
    let norm = normalizer.clone();
    Box::new(gen.map(move |r| norm.transform(&r)))
}

/// Collects `n` records from any stream.
pub fn collect(stream: &mut dyn Iterator<Item = Vector>, n: usize) -> Vec<Vector> {
    stream.take(n).collect()
}

/// Dimensionality of NFD-like records.
pub const NFD_DIM: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_stream_matches_dims() {
        let mut s = synthetic_stream(4, 5, 0.1, 1);
        let recs = collect(&mut s, 10);
        assert!(recs.iter().all(|r| r.dim() == 4));
    }

    #[test]
    fn nfd_like_stream_is_normalized() {
        let norm = nfd_like_normalizer(1);
        let mut s = nfd_like_boxed(&norm, 0.05, 2);
        let recs = collect(&mut *s, 100);
        assert!(recs.iter().all(|r| r.dim() == NFD_DIM));
        assert!(recs.iter().all(|r| r.iter().all(|&v| (0.0..=1.0).contains(&v))));
    }

    #[test]
    fn noisy_stream_emits_finite_records() {
        let mut s = noisy_synthetic_boxed(1, 2, 0.1, 3);
        assert!(collect(&mut *s, 50).iter().all(|r| r.is_finite()));
    }
}
