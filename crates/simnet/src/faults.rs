//! Deterministic fault injection: message loss, duplication, reordering,
//! timed link partitions, and node crash/restart schedules.
//!
//! A [`FaultPlan`] is pure data plus a seed. The simulator draws every
//! fault decision from a dedicated [`cludistream_rng::StdRng`] stream
//! seeded from the plan, in event-loop order — which is itself
//! deterministic — so a given `(workload seed, FaultPlan)` pair replays
//! byte-identically: the same messages are dropped at the same simulated
//! times, the same duplicates appear, and journals diff clean across runs.
//!
//! The plan describes *what the network does*; recovering from it is the
//! protocol's job (see `cludistream::protocol` for the sequence-numbered
//! ACK/retransmit layer the CluDistream driver puts on top).

use crate::event::{NodeId, SimTime};

/// Per-link stochastic fault probabilities. One `LinkFaults` applies to
/// every link of the simulation (the paper's star has symmetric links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently discarded in flight.
    pub drop_p: f64,
    /// Probability a delivered message arrives twice.
    pub duplicate_p: f64,
    /// Probability a message is delayed by extra jitter, letting later
    /// sends overtake it (reordering).
    pub reorder_p: f64,
    /// Maximum extra delay (microseconds) applied to reordered messages.
    pub reorder_max_delay_us: SimTime,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults { drop_p: 0.0, duplicate_p: 0.0, reorder_p: 0.0, reorder_max_delay_us: 0 }
    }
}

impl LinkFaults {
    /// True when every probability is zero (no per-message faults).
    pub fn is_quiet(&self) -> bool {
        self.drop_p <= 0.0 && self.duplicate_p <= 0.0 && self.reorder_p <= 0.0
    }
}

/// A timed bidirectional link partition: messages between `a` and `b`
/// sent inside `[from_us, until_us)` are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Partition start (inclusive), simulated microseconds.
    pub from_us: SimTime,
    /// Partition end (exclusive), simulated microseconds.
    pub until_us: SimTime,
}

impl Partition {
    /// True when a send `from → to` at time `t` falls inside this window.
    pub fn severs(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        let endpoints =
            (self.a == from && self.b == to) || (self.a == to && self.b == from);
        endpoints && t >= self.from_us && t < self.until_us
    }
}

/// A scheduled crash/restart of one node. While down, the node receives
/// nothing (arriving messages are dropped), its timers are cancelled, and
/// on restart its `on_restart` hook runs so it can resync from durable
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The node that crashes.
    pub node: NodeId,
    /// Crash time, simulated microseconds.
    pub down_at_us: SimTime,
    /// Restart time, simulated microseconds (must be `> down_at_us`).
    pub up_at_us: SimTime,
}

/// A complete deterministic fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
    /// Stochastic per-message faults applied to every link.
    pub link: LinkFaults,
    /// Timed link partitions.
    pub partitions: Vec<Partition>,
    /// Node crash/restart schedule.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// A quiet plan (no faults) with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Sets the per-link fault probabilities.
    pub fn with_link(mut self, link: LinkFaults) -> Self {
        self.link = link;
        self
    }

    /// Adds a timed bidirectional partition between `a` and `b`.
    pub fn with_partition(mut self, a: NodeId, b: NodeId, from_us: SimTime, until_us: SimTime) -> Self {
        self.partitions.push(Partition { a, b, from_us, until_us });
        self
    }

    /// Adds a crash/restart outage for `node`.
    pub fn with_outage(mut self, node: NodeId, down_at_us: SimTime, up_at_us: SimTime) -> Self {
        self.outages.push(Outage { node, down_at_us, up_at_us });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.link.is_quiet() && self.partitions.is_empty() && self.outages.is_empty()
    }

    /// The first partition severing `from → to` at time `t`, if any.
    pub fn severed(&self, from: NodeId, to: NodeId, t: SimTime) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.severs(from, to, t))
    }
}

/// Byte- and message-accurate accounting of what the fault layer did.
/// The conservation invariant `delivered + dropped == sent + duplicated`
/// holds once the event queue has drained (messages cannot vanish any
/// other way).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages handed to a recipient's `on_message`.
    pub delivered_messages: u64,
    /// Bytes handed to recipients.
    pub delivered_bytes: u64,
    /// Messages discarded for any reason.
    pub dropped_messages: u64,
    /// Bytes discarded.
    pub dropped_bytes: u64,
    /// Drops caused by random loss (`LinkFaults::drop_p`).
    pub dropped_by_loss: u64,
    /// Drops caused by a partition window.
    pub dropped_by_partition: u64,
    /// Drops caused by the recipient being crashed at arrival.
    pub dropped_to_down_node: u64,
    /// Extra copies injected by `LinkFaults::duplicate_p`.
    pub duplicated_messages: u64,
    /// Bytes of injected duplicates.
    pub duplicated_bytes: u64,
    /// Messages given reorder jitter.
    pub reordered_messages: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Restart events executed.
    pub restarts: u64,
    /// Timers cancelled because their node crashed before they fired.
    pub timers_cancelled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_severs_both_directions_inside_window() {
        let p = Partition { a: NodeId(0), b: NodeId(2), from_us: 100, until_us: 200 };
        assert!(p.severs(NodeId(0), NodeId(2), 100));
        assert!(p.severs(NodeId(2), NodeId(0), 199));
        assert!(!p.severs(NodeId(0), NodeId(2), 200), "until is exclusive");
        assert!(!p.severs(NodeId(0), NodeId(2), 99));
        assert!(!p.severs(NodeId(0), NodeId(1), 150), "wrong endpoints");
    }

    #[test]
    fn quiet_plan_detection() {
        assert!(FaultPlan::seeded(7).is_quiet());
        let lossy = FaultPlan::seeded(7)
            .with_link(LinkFaults { drop_p: 0.1, ..Default::default() });
        assert!(!lossy.is_quiet());
        let cut = FaultPlan::seeded(7).with_partition(NodeId(0), NodeId(1), 0, 10);
        assert!(!cut.is_quiet());
        let outage = FaultPlan::seeded(7).with_outage(NodeId(1), 5, 10);
        assert!(!outage.is_quiet());
    }

    #[test]
    fn severed_finds_matching_partition() {
        let plan = FaultPlan::seeded(0)
            .with_partition(NodeId(0), NodeId(2), 0, 50)
            .with_partition(NodeId(1), NodeId(2), 100, 150);
        assert!(plan.severed(NodeId(2), NodeId(0), 25).is_some());
        assert!(plan.severed(NodeId(2), NodeId(0), 75).is_none());
        assert!(plan.severed(NodeId(1), NodeId(2), 125).is_some());
    }
}
