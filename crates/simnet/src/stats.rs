use crate::event::{NodeId, SimTime, MICROS_PER_SEC};
use std::collections::HashMap;

/// Byte-accurate communication accounting with a per-second time series —
/// the measurement instrument behind the paper's Fig. 2 ("the total
/// communication cost is collected every second").
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    total_bytes: u64,
    total_messages: u64,
    /// bytes per simulated second, indexed by second.
    per_second: Vec<u64>,
    /// (from, to) → bytes.
    per_link: HashMap<(NodeId, NodeId), u64>,
}

impl CommStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `bytes` bytes sent at `time`.
    pub fn record(&mut self, time: SimTime, from: NodeId, to: NodeId, bytes: usize) {
        self.total_bytes += bytes as u64;
        self.total_messages += 1;
        let sec = (time / MICROS_PER_SEC) as usize;
        if self.per_second.len() <= sec {
            self.per_second.resize(sec + 1, 0);
        }
        self.per_second[sec] += bytes as u64;
        *self.per_link.entry((from, to)).or_insert(0) += bytes as u64;
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages transmitted.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Bytes transmitted during each simulated second.
    pub fn per_second(&self) -> &[u64] {
        &self.per_second
    }

    /// Cumulative bytes at the end of each simulated second.
    pub fn cumulative_per_second(&self) -> Vec<u64> {
        let mut acc = 0;
        self.per_second
            .iter()
            .map(|&b| {
                acc += b;
                acc
            })
            .collect()
    }

    /// Bytes sent over a specific directed link.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.per_link.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Bytes sent *by* a node over all links.
    pub fn bytes_from(&self, node: NodeId) -> u64 {
        self.per_link.iter().filter(|((f, _), _)| *f == node).map(|(_, b)| b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(1), 100);
        s.record(500_000, NodeId(1), NodeId(0), 50);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.total_messages(), 2);
    }

    #[test]
    fn per_second_buckets() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(1), 10);
        s.record(999_999, NodeId(0), NodeId(1), 20);
        s.record(1_000_000, NodeId(0), NodeId(1), 30);
        s.record(3_500_000, NodeId(0), NodeId(1), 40);
        assert_eq!(s.per_second(), &[30, 30, 0, 40]);
        assert_eq!(s.cumulative_per_second(), vec![30, 60, 60, 100]);
    }

    #[test]
    fn per_link_breakdown() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(2), 5);
        s.record(0, NodeId(1), NodeId(2), 7);
        s.record(0, NodeId(0), NodeId(2), 3);
        assert_eq!(s.link_bytes(NodeId(0), NodeId(2)), 8);
        assert_eq!(s.link_bytes(NodeId(1), NodeId(2)), 7);
        assert_eq!(s.link_bytes(NodeId(2), NodeId(0)), 0);
        assert_eq!(s.bytes_from(NodeId(0)), 8);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CommStats::new();
        assert_eq!(s.total_bytes(), 0);
        assert!(s.per_second().is_empty());
        assert!(s.cumulative_per_second().is_empty());
    }
}
