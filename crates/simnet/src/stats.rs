use crate::event::{NodeId, SimTime, MICROS_PER_SEC};
use std::collections::HashMap;

/// Per-directed-link accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LinkCounters {
    bytes: u64,
    messages: u64,
}

/// Byte-accurate communication accounting with a per-second time series —
/// the measurement instrument behind the paper's Fig. 2 ("the total
/// communication cost is collected every second").
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    total_bytes: u64,
    total_messages: u64,
    /// bytes per simulated second, indexed by second.
    per_second: Vec<u64>,
    /// (from, to) → bytes and message counts.
    per_link: HashMap<(NodeId, NodeId), LinkCounters>,
}

impl CommStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `bytes` bytes sent at `time`.
    pub fn record(&mut self, time: SimTime, from: NodeId, to: NodeId, bytes: usize) {
        self.total_bytes += bytes as u64;
        self.total_messages += 1;
        let sec = (time / MICROS_PER_SEC) as usize;
        if self.per_second.len() <= sec {
            self.per_second.resize(sec + 1, 0);
        }
        self.per_second[sec] += bytes as u64;
        let link = self.per_link.entry((from, to)).or_default();
        link.bytes += bytes as u64;
        link.messages += 1;
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total messages transmitted.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Bytes transmitted during each simulated second.
    pub fn per_second(&self) -> &[u64] {
        &self.per_second
    }

    /// Cumulative bytes at the end of each simulated second.
    pub fn cumulative_per_second(&self) -> Vec<u64> {
        let mut acc = 0;
        self.per_second
            .iter()
            .map(|&b| {
                acc += b;
                acc
            })
            .collect()
    }

    /// Bytes sent over a specific directed link.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.per_link.get(&(from, to)).map(|l| l.bytes).unwrap_or(0)
    }

    /// Messages sent over a specific directed link.
    pub fn link_messages(&self, from: NodeId, to: NodeId) -> u64 {
        self.per_link.get(&(from, to)).map(|l| l.messages).unwrap_or(0)
    }

    /// Bytes sent *by* a node over all links.
    pub fn bytes_from(&self, node: NodeId) -> u64 {
        self.per_link.iter().filter(|((f, _), _)| *f == node).map(|(_, l)| l.bytes).sum()
    }

    /// Bytes received *by* a node over all links — the counterpart of
    /// [`CommStats::bytes_from`] (in a star this is the coordinator's
    /// ingress load).
    pub fn bytes_to(&self, node: NodeId) -> u64 {
        self.per_link.iter().filter(|((_, t), _)| *t == node).map(|(_, l)| l.bytes).sum()
    }

    /// Messages sent *by* a node over all links.
    pub fn messages_from(&self, node: NodeId) -> u64 {
        self.per_link.iter().filter(|((f, _), _)| *f == node).map(|(_, l)| l.messages).sum()
    }

    /// Messages received *by* a node over all links.
    pub fn messages_to(&self, node: NodeId) -> u64 {
        self.per_link.iter().filter(|((_, t), _)| *t == node).map(|(_, l)| l.messages).sum()
    }

    /// Per-directed-link message counts, sorted by `(from, to)` so output
    /// is deterministic despite the hash-map storage.
    pub fn per_link_messages(&self) -> Vec<((NodeId, NodeId), u64)> {
        let mut rows: Vec<_> =
            self.per_link.iter().map(|(&k, l)| (k, l.messages)).collect();
        rows.sort_by_key(|((f, t), _)| (f.0, t.0));
        rows
    }

    /// Per-directed-link byte counts, sorted by `(from, to)`.
    pub fn per_link_bytes(&self) -> Vec<((NodeId, NodeId), u64)> {
        let mut rows: Vec<_> = self.per_link.iter().map(|(&k, l)| (k, l.bytes)).collect();
        rows.sort_by_key(|((f, t), _)| (f.0, t.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(1), 100);
        s.record(500_000, NodeId(1), NodeId(0), 50);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.total_messages(), 2);
    }

    #[test]
    fn per_second_buckets() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(1), 10);
        s.record(999_999, NodeId(0), NodeId(1), 20);
        s.record(1_000_000, NodeId(0), NodeId(1), 30);
        s.record(3_500_000, NodeId(0), NodeId(1), 40);
        assert_eq!(s.per_second(), &[30, 30, 0, 40]);
        assert_eq!(s.cumulative_per_second(), vec![30, 60, 60, 100]);
    }

    #[test]
    fn per_link_breakdown() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(2), 5);
        s.record(0, NodeId(1), NodeId(2), 7);
        s.record(0, NodeId(0), NodeId(2), 3);
        assert_eq!(s.link_bytes(NodeId(0), NodeId(2)), 8);
        assert_eq!(s.link_bytes(NodeId(1), NodeId(2)), 7);
        assert_eq!(s.link_bytes(NodeId(2), NodeId(0)), 0);
        assert_eq!(s.bytes_from(NodeId(0)), 8);
    }

    #[test]
    fn ingress_mirrors_egress() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(2), 5);
        s.record(0, NodeId(1), NodeId(2), 7);
        s.record(0, NodeId(2), NodeId(0), 11);
        // The hub receives what the spokes send.
        assert_eq!(s.bytes_to(NodeId(2)), 12);
        assert_eq!(s.bytes_to(NodeId(0)), 11);
        assert_eq!(s.bytes_to(NodeId(1)), 0);
        assert_eq!(s.bytes_from(NodeId(0)) + s.bytes_from(NodeId(1)), s.bytes_to(NodeId(2)));
    }

    #[test]
    fn message_counts_per_node_and_link() {
        let mut s = CommStats::new();
        s.record(0, NodeId(0), NodeId(2), 5);
        s.record(1, NodeId(0), NodeId(2), 5);
        s.record(2, NodeId(1), NodeId(2), 7);
        assert_eq!(s.messages_from(NodeId(0)), 2);
        assert_eq!(s.messages_from(NodeId(1)), 1);
        assert_eq!(s.messages_from(NodeId(2)), 0);
        assert_eq!(s.messages_to(NodeId(2)), 3);
        assert_eq!(s.link_messages(NodeId(0), NodeId(2)), 2);
        assert_eq!(s.link_messages(NodeId(2), NodeId(0)), 0);
        assert_eq!(
            s.per_link_messages(),
            vec![((NodeId(0), NodeId(2)), 2), ((NodeId(1), NodeId(2)), 1)]
        );
        assert_eq!(
            s.per_link_bytes(),
            vec![((NodeId(0), NodeId(2)), 10), ((NodeId(1), NodeId(2)), 7)]
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CommStats::new();
        assert_eq!(s.total_bytes(), 0);
        assert!(s.per_second().is_empty());
        assert!(s.cumulative_per_second().is_empty());
        assert_eq!(s.bytes_to(NodeId(0)), 0);
        assert_eq!(s.messages_from(NodeId(0)), 0);
        assert!(s.per_link_messages().is_empty());
    }
}
