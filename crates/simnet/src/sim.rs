use crate::event::{NodeId, QueuedEvent, SimEvent, SimTime};
use crate::network::{LinkModel, Topology};
use crate::node::{Action, Context, Node};
use crate::stats::CommStats;
use crate::trace::Trace;
use cludistream_obs::{Obs, Recorder};
use std::collections::BinaryHeap;
use std::fmt;

/// Errors surfaced by the simulation driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to send along a link the topology forbids.
    IllegalLink {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// A message was addressed to a node id that does not exist.
    UnknownNode(NodeId),
    /// The node count does not match what the topology requires.
    TopologySize {
        /// Nodes registered.
        have: usize,
        /// Nodes the topology describes.
        need: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalLink { from, to } => {
                write!(f, "illegal link {from} -> {to} for this topology")
            }
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::TopologySize { have, need } => {
                write!(f, "topology requires {need} nodes, {have} registered")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The deterministic event loop.
///
/// Nodes are registered in id order with [`Simulation::add_node`]; the run
/// starts with every node's `on_start`, then drains the event queue until
/// empty, a node calls [`Context::halt`], or the optional time limit is
/// reached.
pub struct Simulation<M> {
    nodes: Vec<Box<dyn Node<M>>>,
    topology: Topology,
    link: LinkModel,
    queue: BinaryHeap<QueuedEvent<M>>,
    time: SimTime,
    seq: u64,
    stats: CommStats,
    trace: Option<Trace>,
    obs: Obs,
    halted: bool,
}

impl<M: 'static> Simulation<M> {
    /// Creates a simulation over the given topology and link model.
    pub fn new(topology: Topology, link: LinkModel) -> Self {
        Simulation {
            nodes: Vec::new(),
            topology,
            link,
            queue: BinaryHeap::new(),
            time: 0,
            seq: 0,
            stats: CommStats::new(),
            trace: None,
            obs: Obs::noop(),
            halted: false,
        }
    }

    /// Enables per-message tracing (off by default; traces grow with the
    /// message count). Read the result with [`Self::trace`] after the run.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The message trace, when [`Self::enable_trace`] was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches a telemetry observer. The simulator stamps the observer's
    /// sim-time clock as the event loop advances (so journaled events carry
    /// deterministic simulated timestamps, never wall-clock) and records
    /// `net.messages` / `net.bytes` counters plus a `net.msg_bytes`
    /// size histogram for every send.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Registers the next node; returns its id (ids are assigned densely in
    /// registration order).
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mutable access to a node (for injecting work or reading results
    /// after the run). The concrete type must be recovered by the caller.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<M> {
        self.nodes[id.0].as_mut()
    }

    /// Downcasts a node to its concrete type — the way experiments read a
    /// node's results after [`Self::run`] completes. Returns `None` on a
    /// type mismatch.
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node: &mut dyn std::any::Any = self.nodes[id.0].as_mut();
        node.downcast_mut::<T>()
    }

    /// Runs until the queue drains or a node halts. See
    /// [`Self::run_until`] for a bounded variant.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains, a node halts, or simulated time would
    /// exceed `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if let Some(need) = self.topology.size() {
            if self.nodes.len() != need {
                return Err(SimError::TopologySize { have: self.nodes.len(), need });
            }
        }

        // Start phase.
        let mut staged: Vec<(NodeId, Vec<Action<M>>)> = Vec::new();
        for idx in 0..self.nodes.len() {
            let id = NodeId(idx);
            let mut actions = Vec::new();
            {
                let mut ctx = Context { now: self.time, self_id: id, actions: &mut actions };
                self.nodes[idx].on_start(&mut ctx);
            }
            staged.push((id, actions));
        }
        for (id, actions) in staged {
            self.commit(id, actions)?;
        }

        // Event loop.
        while !self.halted {
            let Some(entry) = self.queue.pop() else { break };
            if entry.time > deadline {
                // Put it back conceptually: time limit reached.
                self.queue.push(entry);
                break;
            }
            debug_assert!(entry.time >= self.time, "time went backwards");
            self.time = entry.time;
            self.obs.set_sim_time(self.time);
            type Callback<'a, M> = Box<dyn FnMut(&mut dyn Node<M>, &mut Context<'_, M>) + 'a>;
            let (node_id, mut run): (NodeId, Callback<'_, M>) =
                match entry.event {
                    SimEvent::Message { from, to, payload, bytes: _ } => {
                        let mut payload = Some(payload);
                        (
                            to,
                            Box::new(move |node, ctx| {
                                node.on_message(ctx, from, payload.take().expect("single call"))
                            }),
                        )
                    }
                    SimEvent::Timer { node, tag } => {
                        (node, Box::new(move |n, ctx| n.on_timer(ctx, tag)))
                    }
                };
            if node_id.0 >= self.nodes.len() {
                return Err(SimError::UnknownNode(node_id));
            }
            let mut actions = Vec::new();
            {
                let mut ctx =
                    Context { now: self.time, self_id: node_id, actions: &mut actions };
                run(self.nodes[node_id.0].as_mut(), &mut ctx);
            }
            self.commit(node_id, actions)?;
        }
        Ok(())
    }

    /// Validates and enqueues the actions a node staged during a callback.
    fn commit(&mut self, from: NodeId, actions: Vec<Action<M>>) -> Result<(), SimError> {
        for action in actions {
            match action {
                Action::Send { to, payload, bytes } => {
                    if to.0 >= self.nodes.len() {
                        return Err(SimError::UnknownNode(to));
                    }
                    if !self.topology.allows(from, to) {
                        return Err(SimError::IllegalLink { from, to });
                    }
                    self.stats.record(self.time, from, to, bytes);
                    if let Some(trace) = &mut self.trace {
                        trace.record(self.time, from, to, bytes);
                    }
                    if self.obs.enabled() {
                        self.obs.counter("net.messages", 1);
                        self.obs.counter("net.bytes", bytes as u64);
                        self.obs.observe("net.msg_bytes", bytes as u64);
                    }
                    let time = self.time + self.link.delay(bytes);
                    self.seq += 1;
                    self.queue.push(QueuedEvent {
                        time,
                        seq: self.seq,
                        event: SimEvent::Message { from, to, payload, bytes },
                    });
                }
                Action::Timer { delay, tag } => {
                    self.seq += 1;
                    self.queue.push(QueuedEvent {
                        time: self.time + delay,
                        seq: self.seq,
                        event: SimEvent::Timer { node: from, tag },
                    });
                }
                Action::Halt => self.halted = true,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages and echoes until a budget is exhausted.
    struct Echoer {
        remaining: u32,
        received: u32,
    }

    impl Node<u32> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.received += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    /// Kicks off the ping-pong.
    struct Kicker;
    impl Node<u32> for Kicker {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.send(NodeId(1), 0, 8);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            if msg < 10 {
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    #[test]
    fn ping_pong_terminates_with_counts() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        sim.add_node(Box::new(Echoer { remaining: 100, received: 0 }));
        sim.run().unwrap();
        // Kicker sends 0, echoer replies 1, ..., kicker sends 10, echoer
        // replies 11, kicker stops (11 >= 10) → messages 0..=11 → 12 total.
        assert_eq!(sim.stats().total_messages(), 12);
        assert_eq!(sim.stats().total_bytes(), 96);
    }

    #[test]
    fn illegal_link_rejected() {
        struct BadSender;
        impl Node<u32> for BadSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(NodeId(1), 0, 1); // spoke → spoke in a star
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        }
        struct Sink;
        impl Node<u32> for Sink {
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        }
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(2), LinkModel::instant());
        sim.add_node(Box::new(BadSender));
        sim.add_node(Box::new(Sink));
        sim.add_node(Box::new(Sink));
        assert_eq!(
            sim.run(),
            Err(SimError::IllegalLink { from: NodeId(0), to: NodeId(1) })
        );
    }

    #[test]
    fn topology_size_enforced() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(3), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        assert_eq!(sim.run(), Err(SimError::TopologySize { have: 1, need: 4 }));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<()> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, tag: u64) {
                self.fired.push(tag);
                self.fired.push(ctx.now());
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        let id = sim.add_node(Box::new(TimerNode { fired: vec![] }));
        sim.run().unwrap();
        let node: &mut TimerNode = sim.node_as(id).expect("concrete type");
        assert_eq!(node.fired, vec![1, 100, 2, 200, 3, 300]);
    }

    #[test]
    fn link_delay_advances_clock() {
        struct Once;
        impl Node<u32> for Once {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    ctx.send(NodeId(1), 0, 1000);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, _: u32) {
                assert_eq!(ctx.now(), 1100);
            }
        }
        let link = LinkModel { latency_us: 100, bandwidth_bps: 1_000_000 };
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), link);
        sim.add_node(Box::new(Once));
        sim.add_node(Box::new(Once));
        sim.run().unwrap();
        assert_eq!(sim.now(), 1100);
    }

    #[test]
    fn halt_stops_immediately() {
        struct Halter {
            handled: u32,
        }
        impl Node<()> for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                for i in 0..10 {
                    ctx.set_timer(i * 10, i);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, tag: u64) {
                self.handled += 1;
                if tag == 2 {
                    ctx.halt();
                }
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        let id = sim.add_node(Box::new(Halter { handled: 0 }));
        sim.run().unwrap();
        let node: &mut Halter = sim.node_as(id).expect("concrete type");
        assert_eq!(node.handled, 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Periodic;
        impl Node<()> for Periodic {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(1_000, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: u64) {
                ctx.set_timer(1_000, 0); // forever
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Periodic));
        sim.run_until(100_000).unwrap();
        assert!(sim.now() <= 100_000);
    }

    #[test]
    fn trace_records_sends_when_enabled() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        sim.add_node(Box::new(Echoer { remaining: 100, received: 0 }));
        sim.enable_trace();
        sim.run().unwrap();
        let trace = sim.trace().expect("trace enabled");
        assert_eq!(trace.len() as u64, sim.stats().total_messages());
        assert!(trace.is_monotone());
        // Ping-pong alternates links.
        assert_eq!(trace.on_link(NodeId(0), NodeId(1)).len(), 6);
        assert_eq!(trace.on_link(NodeId(1), NodeId(0)).len(), 6);
    }

    #[test]
    fn trace_disabled_by_default() {
        let sim: Simulation<u32> = Simulation::new(Topology::Complete, LinkModel::instant());
        assert!(sim.trace().is_none());
    }

    #[test]
    fn unknown_recipient_rejected() {
        struct Wild;
        impl Node<()> for Wild {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(NodeId(42), (), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Wild));
        assert_eq!(sim.run(), Err(SimError::UnknownNode(NodeId(42))));
    }
}
