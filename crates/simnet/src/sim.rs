use crate::event::{NodeId, QueuedEvent, SimEvent, SimTime};
use crate::faults::{FaultPlan, FaultStats};
use crate::network::{LinkModel, Topology};
use crate::node::{Action, Context, Node};
use crate::stats::CommStats;
use crate::trace::Trace;
use cludistream_obs::{net, DropReason, Event as ObsEvent, Obs, Recorder};
use cludistream_rng::{Rng, StdRng};
use std::collections::BinaryHeap;
use std::fmt;

/// Errors surfaced by the simulation driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to send along a link the topology forbids.
    IllegalLink {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// A message was addressed to a node id that does not exist.
    UnknownNode(NodeId),
    /// The node count does not match what the topology requires.
    TopologySize {
        /// Nodes registered.
        have: usize,
        /// Nodes the topology describes.
        need: usize,
    },
    /// A fault-plan outage is malformed (restart not strictly after the
    /// crash).
    BadOutage {
        /// The node the outage concerns.
        node: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalLink { from, to } => {
                write!(f, "illegal link {from} -> {to} for this topology")
            }
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::TopologySize { have, need } => {
                write!(f, "topology requires {need} nodes, {have} registered")
            }
            SimError::BadOutage { node } => {
                write!(f, "outage for {node} must restart strictly after it crashes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The deterministic event loop.
///
/// Nodes are registered in id order with [`Simulation::add_node`]; the run
/// starts with every node's `on_start`, then drains the event queue until
/// empty, a node calls [`Context::halt`], or the optional time limit is
/// reached.
pub struct Simulation<M> {
    nodes: Vec<Box<dyn Node<M>>>,
    topology: Topology,
    link: LinkModel,
    queue: BinaryHeap<QueuedEvent<M>>,
    time: SimTime,
    seq: u64,
    stats: CommStats,
    trace: Option<Trace>,
    obs: Obs,
    halted: bool,
    /// Fault schedule plus its dedicated RNG stream (None = reliable net).
    fault: Option<FaultCtl>,
    /// Always-on delivery/fault accounting (zeros without a plan).
    fault_stats: FaultStats,
    /// Which nodes are currently crashed.
    down: Vec<bool>,
    /// Per-node crash epoch; bumped on crash to cancel stale timers.
    epochs: Vec<u64>,
    /// Set once the plan's outages/partitions have been scheduled, so a
    /// resumed `run_until` does not schedule them twice.
    faults_scheduled: bool,
    /// How to clone a payload for duplicate injection; captured by
    /// [`Simulation::set_fault_plan`], which requires `M: Clone`.
    clone_payload: Option<fn(&M) -> M>,
}

/// The live fault state: the plan and the RNG stream its decisions come
/// from.
struct FaultCtl {
    plan: FaultPlan,
    rng: StdRng,
}

impl<M: 'static> Simulation<M> {
    /// Creates a simulation over the given topology and link model.
    pub fn new(topology: Topology, link: LinkModel) -> Self {
        Simulation {
            nodes: Vec::new(),
            topology,
            link,
            queue: BinaryHeap::new(),
            time: 0,
            seq: 0,
            stats: CommStats::new(),
            trace: None,
            obs: Obs::noop(),
            halted: false,
            fault: None,
            fault_stats: FaultStats::default(),
            down: Vec::new(),
            epochs: Vec::new(),
            faults_scheduled: false,
            clone_payload: None,
        }
    }

    /// The fault/delivery accounting accumulated so far. All-zero when no
    /// fault plan is attached, except `delivered_*`, which always counts
    /// completed deliveries.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// True when `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.get(node.0).copied().unwrap_or(false)
    }

    /// Enables per-message tracing (off by default; traces grow with the
    /// message count). Read the result with [`Self::trace`] after the run.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The message trace, when [`Self::enable_trace`] was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches a telemetry observer. The simulator stamps the observer's
    /// sim-time clock as the event loop advances (so journaled events carry
    /// deterministic simulated timestamps, never wall-clock) and records
    /// `net.messages` / `net.bytes` counters plus a `net.msg_bytes`
    /// size histogram for every send.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Registers the next node; returns its id (ids are assigned densely in
    /// registration order).
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mutable access to a node (for injecting work or reading results
    /// after the run). The concrete type must be recovered by the caller.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<M> {
        self.nodes[id.0].as_mut()
    }

    /// Downcasts a node to its concrete type — the way experiments read a
    /// node's results after [`Self::run`] completes. Returns `None` on a
    /// type mismatch.
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let node: &mut dyn std::any::Any = self.nodes[id.0].as_mut();
        node.downcast_mut::<T>()
    }

    /// Runs until the queue drains or a node halts. See
    /// [`Self::run_until`] for a bounded variant.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains, a node halts, or simulated time would
    /// exceed `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if let Some(need) = self.topology.size() {
            if self.nodes.len() != need {
                return Err(SimError::TopologySize { have: self.nodes.len(), need });
            }
        }
        self.down.resize(self.nodes.len(), false);
        self.epochs.resize(self.nodes.len(), 0);
        self.schedule_faults()?;

        // Start phase.
        let mut staged: Vec<(NodeId, Vec<Action<M>>)> = Vec::new();
        for idx in 0..self.nodes.len() {
            let id = NodeId(idx);
            let mut actions = Vec::new();
            {
                let mut ctx = Context { now: self.time, self_id: id, actions: &mut actions };
                self.nodes[idx].on_start(&mut ctx);
            }
            staged.push((id, actions));
        }
        for (id, actions) in staged {
            self.commit(id, actions)?;
        }

        // Event loop.
        while !self.halted {
            let Some(entry) = self.queue.pop() else { break };
            if entry.time > deadline {
                // Put it back conceptually: time limit reached.
                self.queue.push(entry);
                break;
            }
            debug_assert!(entry.time >= self.time, "time went backwards");
            self.time = entry.time;
            self.obs.set_sim_time(self.time);
            type Callback<'a, M> = Box<dyn FnMut(&mut dyn Node<M>, &mut Context<'_, M>) + 'a>;
            let (node_id, mut run): (NodeId, Callback<'_, M>) =
                match entry.event {
                    SimEvent::Crash { node } => {
                        self.epochs[node.0] += 1;
                        self.down[node.0] = true;
                        self.fault_stats.crashes += 1;
                        net::on_crash(&self.obs, node.0 as u64);
                        self.nodes[node.0].on_crash();
                        continue;
                    }
                    SimEvent::Restart { node } => {
                        self.down[node.0] = false;
                        self.fault_stats.restarts += 1;
                        net::on_restart(&self.obs, node.0 as u64);
                        (node, Box::new(move |n, ctx| n.on_restart(ctx)))
                    }
                    SimEvent::Message { from, to, payload, bytes } => {
                        if to.0 < self.down.len() && self.down[to.0] {
                            // Recipient is crashed at arrival: the message
                            // is lost, exactly as a dead TCP endpoint
                            // would lose it.
                            self.fault_stats.dropped_messages += 1;
                            self.fault_stats.dropped_bytes += bytes as u64;
                            self.fault_stats.dropped_to_down_node += 1;
                            net::on_dropped(
                                &self.obs,
                                from.0 as u64,
                                to.0 as u64,
                                bytes as u64,
                                DropReason::NodeDown,
                            );
                            continue;
                        }
                        self.fault_stats.delivered_messages += 1;
                        self.fault_stats.delivered_bytes += bytes as u64;
                        let mut payload = Some(payload);
                        (
                            to,
                            Box::new(move |node, ctx| {
                                node.on_message(ctx, from, payload.take().expect("single call"))
                            }),
                        )
                    }
                    SimEvent::Timer { node, tag, epoch } => {
                        let current =
                            self.epochs.get(node.0).copied().unwrap_or(0);
                        let down = self.down.get(node.0).copied().unwrap_or(false);
                        if down || epoch != current {
                            // The node crashed after arming this timer: a
                            // restarted process has no memory of it.
                            self.fault_stats.timers_cancelled += 1;
                            continue;
                        }
                        (node, Box::new(move |n, ctx| n.on_timer(ctx, tag)))
                    }
                };
            if node_id.0 >= self.nodes.len() {
                return Err(SimError::UnknownNode(node_id));
            }
            let mut actions = Vec::new();
            {
                let mut ctx =
                    Context { now: self.time, self_id: node_id, actions: &mut actions };
                run(self.nodes[node_id.0].as_mut(), &mut ctx);
            }
            self.commit(node_id, actions)?;
        }
        Ok(())
    }

    /// Validates and enqueues the actions a node staged during a callback.
    fn commit(&mut self, from: NodeId, actions: Vec<Action<M>>) -> Result<(), SimError> {
        for action in actions {
            match action {
                Action::Send { to, payload, bytes } => {
                    if to.0 >= self.nodes.len() {
                        return Err(SimError::UnknownNode(to));
                    }
                    if !self.topology.allows(from, to) {
                        return Err(SimError::IllegalLink { from, to });
                    }
                    self.stats.record(self.time, from, to, bytes);
                    if let Some(trace) = &mut self.trace {
                        trace.record(self.time, from, to, bytes);
                    }
                    net::on_send(&self.obs, bytes as u64);
                    // Fault decisions, drawn in a fixed order from the
                    // plan's dedicated RNG stream so runs replay exactly.
                    let mut delay = self.link.delay(bytes);
                    let mut duplicate = false;
                    if let Some(fault) = &mut self.fault {
                        let severed = fault.plan.severed(from, to, self.time).is_some();
                        let lost = !severed
                            && fault.plan.link.drop_p > 0.0
                            && fault.rng.gen_bool(fault.plan.link.drop_p);
                        if severed || lost {
                            let reason = if severed {
                                self.fault_stats.dropped_by_partition += 1;
                                DropReason::Partition
                            } else {
                                self.fault_stats.dropped_by_loss += 1;
                                DropReason::Loss
                            };
                            self.fault_stats.dropped_messages += 1;
                            self.fault_stats.dropped_bytes += bytes as u64;
                            net::on_dropped(
                                &self.obs,
                                from.0 as u64,
                                to.0 as u64,
                                bytes as u64,
                                reason,
                            );
                            continue;
                        }
                        if fault.plan.link.duplicate_p > 0.0 {
                            duplicate = fault.rng.gen_bool(fault.plan.link.duplicate_p);
                        }
                        if fault.plan.link.reorder_p > 0.0
                            && fault.plan.link.reorder_max_delay_us > 0
                            && fault.rng.gen_bool(fault.plan.link.reorder_p)
                        {
                            delay +=
                                fault.rng.gen_range(1..=fault.plan.link.reorder_max_delay_us);
                            self.fault_stats.reordered_messages += 1;
                            net::on_reordered(&self.obs);
                        }
                    }
                    let time = self.time + delay;
                    if duplicate {
                        if let Some(clone) = self.clone_payload {
                            let copy = clone(&payload);
                            self.fault_stats.duplicated_messages += 1;
                            self.fault_stats.duplicated_bytes += bytes as u64;
                            net::on_duplicated(&self.obs, from.0 as u64, to.0 as u64, bytes as u64);
                            self.seq += 1;
                            self.queue.push(QueuedEvent {
                                time,
                                seq: self.seq,
                                event: SimEvent::Message { from, to, payload: copy, bytes },
                            });
                        }
                    }
                    self.seq += 1;
                    self.queue.push(QueuedEvent {
                        time,
                        seq: self.seq,
                        event: SimEvent::Message { from, to, payload, bytes },
                    });
                }
                Action::Timer { delay, tag } => {
                    let epoch = self.epochs.get(from.0).copied().unwrap_or(0);
                    self.seq += 1;
                    self.queue.push(QueuedEvent {
                        time: self.time + delay,
                        seq: self.seq,
                        event: SimEvent::Timer { node: from, tag, epoch },
                    });
                }
                Action::Halt => self.halted = true,
            }
        }
        Ok(())
    }

    /// Validates the attached fault plan against the node table and
    /// enqueues its crash/restart events (once per simulation).
    fn schedule_faults(&mut self) -> Result<(), SimError> {
        if self.faults_scheduled {
            return Ok(());
        }
        self.faults_scheduled = true;
        let Some(fault) = &self.fault else { return Ok(()) };
        let mut crash_events = Vec::new();
        for outage in &fault.plan.outages {
            if outage.node.0 >= self.nodes.len() {
                return Err(SimError::UnknownNode(outage.node));
            }
            if outage.up_at_us <= outage.down_at_us {
                return Err(SimError::BadOutage { node: outage.node });
            }
            crash_events.push(*outage);
        }
        for p in &fault.plan.partitions {
            for end in [p.a, p.b] {
                if end.0 >= self.nodes.len() {
                    return Err(SimError::UnknownNode(end));
                }
            }
            if self.obs.enabled() {
                // Declared up front: the window itself is in the fields.
                self.obs.event(&ObsEvent::Partitioned {
                    a: p.a.0 as u64,
                    b: p.b.0 as u64,
                    from_us: p.from_us,
                    until_us: p.until_us,
                });
            }
        }
        for outage in crash_events {
            self.seq += 1;
            self.queue.push(QueuedEvent {
                time: outage.down_at_us,
                seq: self.seq,
                event: SimEvent::Crash { node: outage.node },
            });
            self.seq += 1;
            self.queue.push(QueuedEvent {
                time: outage.up_at_us,
                seq: self.seq,
                event: SimEvent::Restart { node: outage.node },
            });
        }
        Ok(())
    }
}

impl<M: Clone + 'static> Simulation<M> {
    /// Attaches a deterministic fault plan. Requires `M: Clone` so the
    /// fault layer can inject duplicate deliveries. Attach before
    /// [`Simulation::run`]; replacing the plan mid-run is not supported
    /// (the outage schedule is enqueued once, at the first run).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let rng = StdRng::seed_from_u64(plan.seed);
        self.fault = Some(FaultCtl { plan, rng });
        self.clone_payload = Some(|payload| payload.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages and echoes until a budget is exhausted.
    struct Echoer {
        remaining: u32,
        received: u32,
    }

    impl Node<u32> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.received += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    /// Kicks off the ping-pong.
    struct Kicker;
    impl Node<u32> for Kicker {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.send(NodeId(1), 0, 8);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            if msg < 10 {
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    #[test]
    fn ping_pong_terminates_with_counts() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        sim.add_node(Box::new(Echoer { remaining: 100, received: 0 }));
        sim.run().unwrap();
        // Kicker sends 0, echoer replies 1, ..., kicker sends 10, echoer
        // replies 11, kicker stops (11 >= 10) → messages 0..=11 → 12 total.
        assert_eq!(sim.stats().total_messages(), 12);
        assert_eq!(sim.stats().total_bytes(), 96);
    }

    #[test]
    fn illegal_link_rejected() {
        struct BadSender;
        impl Node<u32> for BadSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(NodeId(1), 0, 1); // spoke → spoke in a star
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        }
        struct Sink;
        impl Node<u32> for Sink {
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        }
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(2), LinkModel::instant());
        sim.add_node(Box::new(BadSender));
        sim.add_node(Box::new(Sink));
        sim.add_node(Box::new(Sink));
        assert_eq!(
            sim.run(),
            Err(SimError::IllegalLink { from: NodeId(0), to: NodeId(1) })
        );
    }

    #[test]
    fn topology_size_enforced() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(3), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        assert_eq!(sim.run(), Err(SimError::TopologySize { have: 1, need: 4 }));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<()> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, tag: u64) {
                self.fired.push(tag);
                self.fired.push(ctx.now());
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        let id = sim.add_node(Box::new(TimerNode { fired: vec![] }));
        sim.run().unwrap();
        let node: &mut TimerNode = sim.node_as(id).expect("concrete type");
        assert_eq!(node.fired, vec![1, 100, 2, 200, 3, 300]);
    }

    #[test]
    fn link_delay_advances_clock() {
        struct Once;
        impl Node<u32> for Once {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    ctx.send(NodeId(1), 0, 1000);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, _: u32) {
                assert_eq!(ctx.now(), 1100);
            }
        }
        let link = LinkModel { latency_us: 100, bandwidth_bps: 1_000_000 };
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), link);
        sim.add_node(Box::new(Once));
        sim.add_node(Box::new(Once));
        sim.run().unwrap();
        assert_eq!(sim.now(), 1100);
    }

    #[test]
    fn halt_stops_immediately() {
        struct Halter {
            handled: u32,
        }
        impl Node<()> for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                for i in 0..10 {
                    ctx.set_timer(i * 10, i);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, tag: u64) {
                self.handled += 1;
                if tag == 2 {
                    ctx.halt();
                }
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        let id = sim.add_node(Box::new(Halter { handled: 0 }));
        sim.run().unwrap();
        let node: &mut Halter = sim.node_as(id).expect("concrete type");
        assert_eq!(node.handled, 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Periodic;
        impl Node<()> for Periodic {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(1_000, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: u64) {
                ctx.set_timer(1_000, 0); // forever
            }
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Periodic));
        sim.run_until(100_000).unwrap();
        assert!(sim.now() <= 100_000);
    }

    #[test]
    fn trace_records_sends_when_enabled() {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Kicker));
        sim.add_node(Box::new(Echoer { remaining: 100, received: 0 }));
        sim.enable_trace();
        sim.run().unwrap();
        let trace = sim.trace().expect("trace enabled");
        assert_eq!(trace.len() as u64, sim.stats().total_messages());
        assert!(trace.is_monotone());
        // Ping-pong alternates links.
        assert_eq!(trace.on_link(NodeId(0), NodeId(1)).len(), 6);
        assert_eq!(trace.on_link(NodeId(1), NodeId(0)).len(), 6);
    }

    #[test]
    fn trace_disabled_by_default() {
        let sim: Simulation<u32> = Simulation::new(Topology::Complete, LinkModel::instant());
        assert!(sim.trace().is_none());
    }

    #[test]
    fn unknown_recipient_rejected() {
        struct Wild;
        impl Node<()> for Wild {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(NodeId(42), (), 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        }
        let mut sim: Simulation<()> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Wild));
        assert_eq!(sim.run(), Err(SimError::UnknownNode(NodeId(42))));
    }

    // ---- fault injection ----

    use crate::faults::{FaultPlan, LinkFaults};

    /// Sends `count` 8-byte messages to the hub, one per millisecond.
    struct Blaster {
        count: u32,
    }
    impl Node<u32> for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(1_000, 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: u64) {
            if self.count > 0 {
                self.count -= 1;
                ctx.send(NodeId(1), self.count, 8);
                ctx.set_timer(1_000, 0);
            }
        }
    }

    /// Counts deliveries.
    struct Sink {
        received: u32,
    }
    impl Node<u32> for Sink {
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {
            self.received += 1;
        }
    }

    fn lossy_run(plan: FaultPlan) -> (u32, FaultStats) {
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Blaster { count: 200 }));
        let hub = sim.add_node(Box::new(Sink { received: 0 }));
        sim.set_fault_plan(plan);
        sim.run().unwrap();
        let stats = *sim.fault_stats();
        let sink: &mut Sink = sim.node_as(hub).expect("concrete type");
        (sink.received, stats)
    }

    #[test]
    fn random_loss_is_deterministic_and_conserves_messages() {
        let plan = FaultPlan::seeded(42)
            .with_link(LinkFaults { drop_p: 0.25, ..Default::default() });
        let (recv_a, stats_a) = lossy_run(plan.clone());
        let (recv_b, stats_b) = lossy_run(plan);
        assert_eq!(recv_a, recv_b, "same plan must replay identically");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped_by_loss > 0, "25% loss over 200 sends");
        assert!(recv_a < 200);
        // Conservation: every send is delivered or dropped.
        assert_eq!(
            stats_a.delivered_messages + stats_a.dropped_messages,
            200 + stats_a.duplicated_messages
        );
        assert_eq!(u64::from(recv_a), stats_a.delivered_messages);
    }

    #[test]
    fn duplicates_are_injected_and_counted() {
        let plan = FaultPlan::seeded(7)
            .with_link(LinkFaults { duplicate_p: 0.5, ..Default::default() });
        let (received, stats) = lossy_run(plan);
        assert!(stats.duplicated_messages > 0);
        assert_eq!(u64::from(received), 200 + stats.duplicated_messages);
        assert_eq!(stats.dropped_messages, 0);
    }

    #[test]
    fn partition_window_drops_only_inside_it() {
        // Sends happen at t = 1ms, 2ms, ..., 200ms. Cut [50ms, 100ms).
        let plan = FaultPlan::seeded(3).with_partition(NodeId(0), NodeId(1), 50_000, 100_000);
        let (received, stats) = lossy_run(plan);
        assert_eq!(stats.dropped_by_partition, 50);
        assert_eq!(received, 150);
    }

    #[test]
    fn reorder_jitter_lets_later_sends_overtake() {
        struct OrderSink {
            seen: Vec<u32>,
        }
        impl Node<u32> for OrderSink {
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, msg: u32) {
                self.seen.push(msg);
            }
        }
        struct Burst;
        impl Node<u32> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, tag: u64) {
                ctx.send(NodeId(1), tag as u32, 8);
                if tag < 63 {
                    ctx.set_timer(1, tag + 1);
                }
            }
        }
        let plan = FaultPlan::seeded(11).with_link(LinkFaults {
            reorder_p: 0.5,
            reorder_max_delay_us: 500,
            ..Default::default()
        });
        let mut sim: Simulation<u32> = Simulation::new(Topology::star(1), LinkModel::instant());
        sim.add_node(Box::new(Burst));
        let hub = sim.add_node(Box::new(OrderSink { seen: vec![] }));
        sim.set_fault_plan(plan);
        sim.run().unwrap();
        assert!(sim.fault_stats().reordered_messages > 0);
        let sink: &mut OrderSink = sim.node_as(hub).expect("concrete type");
        assert_eq!(sink.seen.len(), 64, "reordering never loses messages");
        let mut sorted = sink.seen.clone();
        sorted.sort_unstable();
        assert_ne!(sink.seen, sorted, "some message overtook an earlier one");
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn crash_cancels_timers_and_restart_hook_runs() {
        struct Phoenix {
            ticks: u32,
            crashes_seen: u32,
            restarts_seen: u32,
        }
        impl Node<u32> for Phoenix {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(1_000, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: u64) {
                self.ticks += 1;
                ctx.set_timer(1_000, 0);
            }
            fn on_crash(&mut self) {
                self.crashes_seen += 1;
            }
            fn on_restart(&mut self, ctx: &mut Context<'_, u32>) {
                self.restarts_seen += 1;
                ctx.set_timer(1_000, 0); // re-arm after resurrection
            }
        }
        let plan = FaultPlan::seeded(0).with_outage(NodeId(0), 10_500, 20_500);
        let mut sim: Simulation<u32> = Simulation::new(Topology::Complete, LinkModel::instant());
        let id = sim.add_node(Box::new(Phoenix { ticks: 0, crashes_seen: 0, restarts_seen: 0 }));
        sim.set_fault_plan(plan);
        sim.run_until(30_000).unwrap();
        let stats = *sim.fault_stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.timers_cancelled, 1, "the in-flight pre-crash timer");
        let node: &mut Phoenix = sim.node_as(id).expect("concrete type");
        assert_eq!(node.crashes_seen, 1);
        assert_eq!(node.restarts_seen, 1);
        // 10 ticks before the crash (1ms..10ms), none while down, then
        // ticks resume at 21.5ms through 30ms → 9 more.
        assert_eq!(node.ticks, 19);
    }

    #[test]
    fn messages_to_down_node_are_dropped() {
        let plan = FaultPlan::seeded(0).with_outage(NodeId(1), 50_500, 100_500);
        let (received, stats) = lossy_run(plan);
        assert_eq!(stats.dropped_to_down_node, 50);
        assert_eq!(received, 150);
    }

    #[test]
    fn bad_outage_rejected() {
        let plan = FaultPlan::seeded(0).with_outage(NodeId(0), 100, 100);
        let mut sim: Simulation<u32> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Blaster { count: 0 }));
        sim.set_fault_plan(plan);
        assert_eq!(sim.run(), Err(SimError::BadOutage { node: NodeId(0) }));
    }

    #[test]
    fn outage_for_unknown_node_rejected() {
        let plan = FaultPlan::seeded(0).with_outage(NodeId(9), 100, 200);
        let mut sim: Simulation<u32> = Simulation::new(Topology::Complete, LinkModel::instant());
        sim.add_node(Box::new(Blaster { count: 0 }));
        sim.set_fault_plan(plan);
        assert_eq!(sim.run(), Err(SimError::UnknownNode(NodeId(9))));
    }
}
