#![warn(missing_docs)]

//! Deterministic discrete-event network simulator.
//!
//! The paper runs its distributed experiments under the C++Sim discrete
//! event simulation package, with a star communication model (each remote
//! site talks to the coordinator only — "there is no direct communication
//! between the remote sites") and a global clock, collecting "the total
//! communication cost ... every second". This crate is that substrate:
//!
//! - [`Simulation`] — a single-threaded, deterministic event loop over
//!   user-defined [`Node`]s, generic over the message type.
//! - [`Topology`] — star and tree topologies whose edges are *enforced*: a
//!   send along a non-edge is a simulation error, which keeps algorithm
//!   implementations honest about the paper's communication model.
//! - [`LinkModel`] — per-message latency plus bandwidth-proportional
//!   serialization delay.
//! - [`CommStats`] — byte-accurate accounting with a per-second time
//!   series, exactly what Fig. 2 plots.
//! - [`FaultPlan`] — deterministic fault injection: per-link drop /
//!   duplicate / reorder probabilities ([`LinkFaults`]), timed
//!   [`Partition`]s, and site crash/restart [`Outage`]s, with every random
//!   decision drawn from a dedicated RNG stream seeded by the plan, so a
//!   fault trace replays byte-identically. Accounting lands in
//!   [`FaultStats`].
//!
//! Time is `u64` microseconds ([`SimTime`]); ties are broken by insertion
//! sequence so runs are reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use cludistream_simnet::{Context, Node, NodeId, Simulation, Topology};
//!
//! struct Ping;
//! struct Echo;
//! impl Node<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.send(NodeId(1), 7, 4); // 4 bytes to the hub
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
//!         assert_eq!(msg, 8);
//!     }
//! }
//! impl Node<u32> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
//!         ctx.send(from, msg + 1, 4);
//!     }
//! }
//!
//! let mut sim = Simulation::new(Topology::star(1), Default::default());
//! sim.add_node(Box::new(Ping)); // NodeId(0): the spoke
//! sim.add_node(Box::new(Echo)); // NodeId(1): the hub
//! sim.run().unwrap();
//! assert_eq!(sim.stats().total_messages(), 2);
//! ```

mod event;
mod faults;
mod network;
mod node;
mod sim;
mod stats;
mod trace;

pub use event::{NodeId, QueuedEvent, SimEvent, SimTime, MICROS_PER_SEC};
pub use faults::{FaultPlan, FaultStats, LinkFaults, Outage, Partition};
pub use network::{LinkModel, Topology};
pub use node::{Context, Node};
pub use sim::{SimError, Simulation};
pub use stats::CommStats;
pub use trace::{Trace, TraceEntry};
