//! Message tracing for protocol debugging and validation.
//!
//! A [`Trace`] records every delivered message as a `(time, from, to,
//! bytes)` row. Experiments and tests use it to assert protocol-level
//! properties — causality (a coordinator update never precedes the
//! triggering site event), per-link activity windows, and burst structure
//! — that aggregate [`crate::CommStats`] counters cannot express.

use crate::event::{NodeId, SimTime};

/// One traced message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Send time (the delivery happens `LinkModel::delay` later).
    pub sent_at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Wire size.
    pub bytes: usize,
}

/// An append-only message trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry. The simulator calls this on every send.
    pub fn record(&mut self, sent_at: SimTime, from: NodeId, to: NodeId, bytes: usize) {
        self.entries.push(TraceEntry { sent_at, from, to, bytes });
    }

    /// All entries in send order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of traced messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries sent over the directed link `from → to`.
    pub fn on_link(&self, from: NodeId, to: NodeId) -> Vec<TraceEntry> {
        self.entries.iter().filter(|e| e.from == from && e.to == to).copied().collect()
    }

    /// Entries sent inside the half-open time window `[start, end)`.
    pub fn in_window(&self, start: SimTime, end: SimTime) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.sent_at >= start && e.sent_at < end)
            .copied()
            .collect()
    }

    /// The longest gap (microseconds) between consecutive sends — the
    /// "silence" metric behind the stability claims. Returns `None` with
    /// fewer than two entries.
    pub fn longest_silence(&self) -> Option<SimTime> {
        if self.entries.len() < 2 {
            return None;
        }
        self.entries
            .windows(2)
            .map(|w| w[1].sent_at - w[0].sent_at)
            .max()
    }

    /// [`Trace::longest_silence`] restricted to the window `[start, end)`.
    ///
    /// The window edges act as virtual events: the gap from `start` to the
    /// first in-window send and from the last in-window send to `end` both
    /// count, so an empty window reports `end - start` of silence. Returns
    /// `None` when `end <= start` (an empty or inverted window has no
    /// well-defined silence).
    pub fn longest_silence_in(&self, start: SimTime, end: SimTime) -> Option<SimTime> {
        if end <= start {
            return None;
        }
        let mut prev = start;
        let mut longest = 0;
        for e in self.entries.iter().filter(|e| e.sent_at >= start && e.sent_at < end) {
            longest = longest.max(e.sent_at - prev);
            prev = e.sent_at;
        }
        Some(longest.max(end - prev))
    }

    /// True when entries are in non-decreasing time order (the simulator
    /// guarantees this; tests assert it).
    pub fn is_monotone(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].sent_at <= w[1].sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(0, NodeId(0), NodeId(2), 10);
        t.record(100, NodeId(1), NodeId(2), 20);
        t.record(500, NodeId(0), NodeId(2), 30);
        t
    }

    #[test]
    fn records_in_order() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.is_monotone());
        assert_eq!(t.entries()[1].bytes, 20);
    }

    #[test]
    fn link_filter() {
        let t = sample();
        let link = t.on_link(NodeId(0), NodeId(2));
        assert_eq!(link.len(), 2);
        assert!(t.on_link(NodeId(2), NodeId(0)).is_empty());
    }

    #[test]
    fn window_filter_half_open() {
        let t = sample();
        assert_eq!(t.in_window(0, 100).len(), 1);
        assert_eq!(t.in_window(0, 101).len(), 2);
        assert_eq!(t.in_window(100, 501).len(), 2);
    }

    #[test]
    fn longest_silence() {
        let t = sample();
        assert_eq!(t.longest_silence(), Some(400));
        assert_eq!(Trace::new().longest_silence(), None);
    }

    #[test]
    fn longest_silence_in_window() {
        let t = sample(); // sends at 0, 100, 500
        // Full span: leading gap 0, gaps 100 and 400, trailing gap 100.
        assert_eq!(t.longest_silence_in(0, 600), Some(400));
        // Window ending before the big gap closes: trailing silence wins.
        assert_eq!(t.longest_silence_in(0, 450), Some(350));
        // Window covering only the first two sends.
        assert_eq!(t.longest_silence_in(0, 200), Some(100));
        // Empty window: wall-to-wall silence.
        assert_eq!(t.longest_silence_in(200, 450), Some(250));
        // Inverted / zero-length windows are undefined.
        assert_eq!(t.longest_silence_in(100, 100), None);
        assert_eq!(t.longest_silence_in(300, 200), None);
        // Leading silence before the first in-window send.
        assert_eq!(t.longest_silence_in(250, 520), Some(250));
    }

    #[test]
    fn non_monotone_detected() {
        let mut t = Trace::new();
        t.record(100, NodeId(0), NodeId(1), 1);
        t.record(50, NodeId(0), NodeId(1), 1);
        assert!(!t.is_monotone());
    }
}
