use crate::event::{NodeId, SimTime};

/// A send requested by a node during a callback, staged until the event
/// loop can validate and enqueue it.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: NodeId, payload: M, bytes: usize },
    Timer { delay: SimTime, tag: u64 },
    Halt,
}

/// The API surface a node sees during its callbacks: the clock, its own
/// identity, and the ability to send messages and set timers.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) actions: &'a mut Vec<Action<M>>,
}

impl<M> Context<'_, M> {
    /// Current simulation time (microseconds).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `payload` to `to`, declaring its wire size in `bytes`. The
    /// simulator validates the link against the topology at dispatch time
    /// and accounts the bytes in [`crate::CommStats`].
    pub fn send(&mut self, to: NodeId, payload: M, bytes: usize) {
        self.actions.push(Action::Send { to, payload, bytes });
    }

    /// Schedules `on_timer(tag)` on this node after `delay` microseconds.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// Requests the whole simulation to stop after this callback returns.
    pub fn halt(&mut self) {
        self.actions.push(Action::Halt);
    }
}

/// Behaviour of a simulation participant. Implementations are single
/// threaded: callbacks never run concurrently.
///
/// The [`std::any::Any`] supertrait lets callers recover concrete node
/// types after a run via [`crate::Simulation::node_as`].
pub trait Node<M>: std::any::Any {
    /// Called once when the simulation starts, in node-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}

    /// Called when a [`crate::FaultPlan`] outage crashes this node. The
    /// process is dying: there is no [`Context`], so nothing can be sent,
    /// and every pending timer is cancelled by the simulator. The default
    /// does nothing (volatile state is simply frozen until restart);
    /// realistic nodes should treat everything not explicitly checkpointed
    /// as lost.
    fn on_crash(&mut self) {}

    /// Called when the outage ends and the node restarts. Runs with a
    /// fresh [`Context`] so the node can resync from durable state and
    /// re-arm its timers. The default does nothing, which leaves a
    /// crashed node inert for the rest of the run.
    fn on_restart(&mut self, _ctx: &mut Context<'_, M>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_actions() {
        let mut actions: Vec<Action<u8>> = Vec::new();
        let mut ctx = Context { now: 42, self_id: NodeId(1), actions: &mut actions };
        assert_eq!(ctx.now(), 42);
        assert_eq!(ctx.self_id(), NodeId(1));
        ctx.send(NodeId(2), 5, 10);
        ctx.set_timer(100, 7);
        ctx.halt();
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Send { to: NodeId(2), payload: 5, bytes: 10 }));
        assert!(matches!(actions[1], Action::Timer { delay: 100, tag: 7 }));
        assert!(matches!(actions[2], Action::Halt));
    }
}
