use crate::event::{NodeId, SimTime, MICROS_PER_SEC};

/// Communication topology. Edges are *enforced* by the simulator: sending
/// along a non-edge is a [`crate::SimError::IllegalLink`].
#[derive(Debug, Clone)]
pub enum Topology {
    /// Every node may talk to every node (useful for tests).
    Complete,
    /// `spokes` remote sites with ids `0..spokes`, one hub (coordinator)
    /// with id `spokes`. Spokes talk to the hub only — the paper's
    /// communication model.
    Star {
        /// Number of spoke nodes.
        spokes: usize,
    },
    /// A rooted tree given by each node's parent (`parent[i]` is the parent
    /// of node `i`; the root has `parent[root] == root`). Communication is
    /// allowed between a node and its parent only — the paper's Sec. 7
    /// multi-layer network.
    Tree {
        /// Parent pointers.
        parent: Vec<usize>,
    },
}

impl Topology {
    /// Star with `spokes` remote sites; the hub is node `spokes`.
    pub fn star(spokes: usize) -> Self {
        Topology::Star { spokes }
    }

    /// Id of the star hub (coordinator).
    pub fn star_hub(spokes: usize) -> NodeId {
        NodeId(spokes)
    }

    /// Builds a balanced tree with the given fanout over `n` nodes; node 0
    /// is the root. Returns the topology and the parent table.
    pub fn balanced_tree(n: usize, fanout: usize) -> Self {
        assert!(n > 0, "tree needs at least one node");
        assert!(fanout >= 1, "fanout must be at least 1");
        let parent: Vec<usize> =
            (0..n).map(|i| if i == 0 { 0 } else { (i - 1) / fanout }).collect();
        Topology::Tree { parent }
    }

    /// Number of nodes the topology describes (`None` for `Complete`, which
    /// imposes no size).
    pub fn size(&self) -> Option<usize> {
        match self {
            Topology::Complete => None,
            Topology::Star { spokes } => Some(spokes + 1),
            Topology::Tree { parent } => Some(parent.len()),
        }
    }

    /// True when `from → to` is a legal link.
    pub fn allows(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        match self {
            Topology::Complete => true,
            Topology::Star { spokes } => {
                let hub = *spokes;
                (from.0 == hub && to.0 < hub) || (to.0 == hub && from.0 < hub)
            }
            Topology::Tree { parent } => {
                let (f, t) = (from.0, to.0);
                if f >= parent.len() || t >= parent.len() {
                    return false;
                }
                parent[f] == t || parent[t] == f
            }
        }
    }
}

/// Link timing model: every message is delayed by `latency` plus its size
/// divided by `bandwidth`.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Fixed per-message latency in microseconds.
    pub latency_us: SimTime,
    /// Bandwidth in bytes per second (0 = infinite).
    pub bandwidth_bps: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // 1 ms latency, 10 MB/s — a modest WAN link; absolute values only
        // shift the time axis, the experiments report per-second byte
        // totals.
        LinkModel { latency_us: 1_000, bandwidth_bps: 10_000_000 }
    }
}

impl LinkModel {
    /// An idealized link: zero latency, infinite bandwidth.
    pub fn instant() -> Self {
        LinkModel { latency_us: 0, bandwidth_bps: 0 }
    }

    /// Delivery delay for a message of `bytes` bytes.
    pub fn delay(&self, bytes: usize) -> SimTime {
        let transmit = if self.bandwidth_bps == 0 {
            0
        } else {
            (bytes as u128 * MICROS_PER_SEC as u128 / self.bandwidth_bps as u128) as SimTime
        };
        self.latency_us + transmit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_allows_spoke_hub_only() {
        let t = Topology::star(3); // spokes 0..3, hub 3
        assert!(t.allows(NodeId(0), NodeId(3)));
        assert!(t.allows(NodeId(3), NodeId(2)));
        assert!(!t.allows(NodeId(0), NodeId(1)), "spoke-to-spoke must be illegal");
        assert!(!t.allows(NodeId(3), NodeId(3)));
        assert!(!t.allows(NodeId(0), NodeId(4)), "out-of-range hub-like id");
        assert_eq!(t.size(), Some(4));
        assert_eq!(Topology::star_hub(3), NodeId(3));
    }

    #[test]
    fn complete_allows_everything_but_self() {
        let t = Topology::Complete;
        assert!(t.allows(NodeId(0), NodeId(9)));
        assert!(!t.allows(NodeId(4), NodeId(4)));
        assert_eq!(t.size(), None);
    }

    #[test]
    fn tree_allows_parent_child_only() {
        // 0 ← 1, 0 ← 2, 1 ← 3 (balanced fanout 2 over 4 nodes).
        let t = Topology::balanced_tree(4, 2);
        assert!(t.allows(NodeId(1), NodeId(0)));
        assert!(t.allows(NodeId(0), NodeId(2)));
        assert!(t.allows(NodeId(3), NodeId(1)));
        assert!(!t.allows(NodeId(1), NodeId(2)), "siblings must be illegal");
        assert!(!t.allows(NodeId(3), NodeId(0)), "grandparent must be illegal");
        assert!(!t.allows(NodeId(0), NodeId(9)), "out of range");
        assert_eq!(t.size(), Some(4));
    }

    #[test]
    fn balanced_tree_parents() {
        if let Topology::Tree { parent } = Topology::balanced_tree(7, 2) {
            assert_eq!(parent, vec![0, 0, 0, 1, 1, 2, 2]);
        } else {
            panic!("expected tree");
        }
    }

    #[test]
    fn link_delay_combines_latency_and_bandwidth() {
        let l = LinkModel { latency_us: 100, bandwidth_bps: 1_000_000 }; // 1 MB/s
        // 1000 bytes at 1 MB/s = 1000 µs transmit + 100 µs latency.
        assert_eq!(l.delay(1000), 1100);
        assert_eq!(l.delay(0), 100);
    }

    #[test]
    fn instant_link_has_zero_delay() {
        assert_eq!(LinkModel::instant().delay(1 << 20), 0);
    }

    #[test]
    fn default_link_is_sane() {
        let l = LinkModel::default();
        assert!(l.delay(1) >= l.latency_us);
    }
}
