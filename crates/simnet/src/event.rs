use std::cmp::Ordering;

/// Simulation time in microseconds since simulation start.
pub type SimTime = u64;

/// Microseconds per simulated second.
pub const MICROS_PER_SEC: SimTime = 1_000_000;

/// Identifier of a simulation node (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An event awaiting delivery.
#[derive(Debug)]
pub enum SimEvent<M> {
    /// A message in flight.
    Message {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        payload: M,
        /// Wire size in bytes (for communication-cost accounting).
        bytes: usize,
    },
    /// A timer set by a node on itself.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen tag distinguishing concurrent timers.
        tag: u64,
        /// The node's crash epoch when the timer was set. A timer fires
        /// only if the node's epoch is unchanged: a crash bumps the epoch,
        /// cancelling every timer armed before it (a restarted process has
        /// no memory of them).
        epoch: u64,
    },
    /// A scheduled node crash (from a [`crate::FaultPlan`] outage).
    Crash {
        /// The node going down.
        node: NodeId,
    },
    /// A scheduled node restart ending an outage.
    Restart {
        /// The node coming back.
        node: NodeId,
    },
}

/// Heap entry: an event plus its firing time and a monotone sequence number
/// for deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct QueuedEvent<M> {
    /// Firing time.
    pub time: SimTime,
    /// Tie-breaker (insertion order).
    pub seq: u64,
    /// The event itself.
    pub event: SimEvent<M>,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest-first.
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for QueuedEvent<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn entry(time: SimTime, seq: u64) -> QueuedEvent<()> {
        QueuedEvent { time, seq, event: SimEvent::Timer { node: NodeId(0), tag: 0, epoch: 0 } }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(entry(30, 0));
        h.push(entry(10, 1));
        h.push(entry(20, 2));
        assert_eq!(h.pop().unwrap().time, 10);
        assert_eq!(h.pop().unwrap().time, 20);
        assert_eq!(h.pop().unwrap().time, 30);
    }

    #[test]
    fn ties_broken_by_sequence() {
        let mut h = BinaryHeap::new();
        h.push(entry(10, 5));
        h.push(entry(10, 2));
        h.push(entry(10, 9));
        assert_eq!(h.pop().unwrap().seq, 2);
        assert_eq!(h.pop().unwrap().seq, 5);
        assert_eq!(h.pop().unwrap().seq, 9);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    mod props {
        use super::*;
        use cludistream_rng::{check, Rng};
        use std::collections::BinaryHeap;

        /// Any random schedule pops in (time, seq) order — the
        /// determinism guarantee the whole simulator rests on.
        #[test]
        fn random_schedules_pop_in_order() {
            check::cases("random_schedules_pop_in_order", 64, |rng| {
                let n = rng.gen_range(1..100);
                let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000u64)).collect();
                let mut heap = BinaryHeap::new();
                for (seq, &time) in times.iter().enumerate() {
                    heap.push(entry(time, seq as u64));
                }
                let mut prev: Option<(SimTime, u64)> = None;
                while let Some(e) = heap.pop() {
                    if let Some((pt, ps)) = prev {
                        assert!(
                            e.time > pt || (e.time == pt && e.seq > ps),
                            "order violated: ({}, {}) after ({pt}, {ps})",
                            e.time, e.seq
                        );
                    }
                    prev = Some((e.time, e.seq));
                }
            });
        }
    }
}
