//! Property-based tests over the generators and normalizers, driven by
//! the seeded case harness in `cludistream_rng::check`.

#![cfg(test)]

use crate::{MinMaxNormalizer, StreamingNormalizer, Zipf};
use cludistream_linalg::Vector;
use cludistream_rng::{check, Rng, StdRng};

fn rows(
    rng: &mut StdRng,
    count: std::ops::Range<usize>,
    dim: usize,
    lo: f64,
    hi: f64,
) -> Vec<Vector> {
    let n = rng.gen_range(count);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(lo..hi)).collect())
        .collect()
}

/// Min-max transforms of in-sample points always land in [0, 1].
#[test]
fn minmax_output_in_unit_cube() {
    check::cases("minmax_output_in_unit_cube", 64, |rng| {
        let sample = rows(rng, 2..30, 3, -100.0, 100.0);
        let n = MinMaxNormalizer::fit(&sample);
        for x in &sample {
            let t = n.transform(x);
            assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)), "out of range: {t}");
        }
    });
}

/// Out-of-sample points clamp rather than escape the cube.
#[test]
fn minmax_clamps_everything() {
    check::cases("minmax_clamps_everything", 64, |rng| {
        let sample = rows(rng, 2..10, 2, -10.0, 10.0);
        let probe: Vector = (0..2).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let n = MinMaxNormalizer::fit(&sample);
        let t = n.transform(&probe);
        assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
    });
}

/// The streaming normalizer never emits non-finite values on finite
/// input, including constant streams (zero variance).
#[test]
fn streaming_normalizer_stays_finite() {
    check::cases("streaming_normalizer_stays_finite", 64, |rng| {
        let len = rng.gen_range(1..100);
        let mut n = StreamingNormalizer::new(1);
        for _ in 0..len {
            let v = rng.gen_range(-100.0..100.0);
            let out = n.push(&Vector::from_slice(&[v]));
            assert!(out.is_finite(), "non-finite output {out}");
        }
    });
}

/// Zipf pmf is a valid, monotonically decreasing distribution for any
/// size and exponent.
#[test]
fn zipf_pmf_valid() {
    check::cases("zipf_pmf_valid", 64, |rng| {
        let n = rng.gen_range(1usize..200);
        let s = rng.gen_range(0.1..4.0);
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
        for k in 2..=n {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15, "pmf not decreasing at {k}");
        }
    });
}

/// Zipf samples always land in range.
#[test]
fn zipf_samples_in_range() {
    check::cases("zipf_samples_in_range", 64, |rng| {
        let n = rng.gen_range(1usize..50);
        let s = rng.gen_range(0.1..3.0);
        let z = Zipf::new(n, s);
        for _ in 0..50 {
            let k = z.sample(rng);
            assert!((1..=n).contains(&k));
        }
    });
}
