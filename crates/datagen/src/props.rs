//! Property-based tests over the generators and normalizers.

#![cfg(test)]

use crate::{MinMaxNormalizer, StreamingNormalizer, Zipf};
use cludistream_linalg::Vector;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Min-max transforms of in-sample points always land in [0, 1].
    #[test]
    fn minmax_output_in_unit_cube(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..30)
    ) {
        let sample: Vec<Vector> = rows.iter().map(|r| Vector::from_slice(r)).collect();
        let n = MinMaxNormalizer::fit(&sample);
        for x in &sample {
            let t = n.transform(x);
            prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)), "out of range: {t}");
        }
    }

    /// Out-of-sample points clamp rather than escape the cube.
    #[test]
    fn minmax_clamps_everything(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 2..10),
        probe in prop::collection::vec(-1000.0f64..1000.0, 2),
    ) {
        let sample: Vec<Vector> = rows.iter().map(|r| Vector::from_slice(r)).collect();
        let n = MinMaxNormalizer::fit(&sample);
        let t = n.transform(&Vector::from_slice(&probe));
        prop_assert!(t.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The streaming normalizer never emits non-finite values on finite
    /// input, including constant streams (zero variance).
    #[test]
    fn streaming_normalizer_stays_finite(
        values in prop::collection::vec(-100.0f64..100.0, 1..100)
    ) {
        let mut n = StreamingNormalizer::new(1);
        for v in values {
            let out = n.push(&Vector::from_slice(&[v]));
            prop_assert!(out.is_finite(), "non-finite output {out}");
        }
    }

    /// Zipf pmf is a valid, monotonically decreasing distribution for any
    /// size and exponent.
    #[test]
    fn zipf_pmf_valid(n in 1usize..200, s in 0.1f64..4.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
        for k in 2..=n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15, "pmf not decreasing at {k}");
        }
    }

    /// Zipf samples always land in range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..50, s in 0.1f64..3.0, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }
}
