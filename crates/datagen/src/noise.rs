//! Noise and incompleteness models.
//!
//! The paper motivates EM-based soft clustering with "noisy or incomplete
//! data records" (unreliable P2P environments, sensing through obstacles)
//! and evaluates CluDistream on synthetic data with 5% random noise
//! (Fig. 4(d)). This module provides both corruptions as iterator adapters,
//! plus the mean-imputation preprocessing that turns incomplete records
//! back into dense vectors.

use cludistream_linalg::Vector;
use cludistream_rng::{Rng, StdRng};

/// Iterator adapter replacing each record, with probability `p`, by a
/// uniform random point over a bounding box — the paper's "random noise".
#[derive(Debug)]
pub struct NoiseInjector<I> {
    inner: I,
    p: f64,
    range: (f64, f64),
    rng: StdRng,
}

impl<I> NoiseInjector<I> {
    /// Wraps `inner`, replacing records with probability `p` by uniform
    /// noise over `range` per coordinate.
    pub fn new(inner: I, p: f64, range: (f64, f64), seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "noise probability must be in [0,1]");
        assert!(range.1 >= range.0, "invalid noise range");
        NoiseInjector { inner, p, range, rng: StdRng::seed_from_u64(seed) }
    }
}

impl<I: Iterator<Item = Vector>> Iterator for NoiseInjector<I> {
    type Item = Vector;

    fn next(&mut self) -> Option<Vector> {
        let x = self.inner.next()?;
        if self.rng.gen::<f64>() < self.p {
            let noisy: Vector =
                (0..x.dim()).map(|_| self.rng.gen_range(self.range.0..=self.range.1)).collect();
            Some(noisy)
        } else {
            Some(x)
        }
    }
}

/// Iterator adapter that independently deletes each coordinate (sets it to
/// NaN) with probability `p` — simulating incomplete records from an
/// unreliable collection environment.
#[derive(Debug)]
pub struct MissingValueInjector<I> {
    inner: I,
    p: f64,
    rng: StdRng,
}

impl<I> MissingValueInjector<I> {
    /// Wraps `inner`, NaN-ing out coordinates independently with probability
    /// `p`.
    pub fn new(inner: I, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "missing probability must be in [0,1]");
        MissingValueInjector { inner, p, rng: StdRng::seed_from_u64(seed) }
    }
}

impl<I: Iterator<Item = Vector>> Iterator for MissingValueInjector<I> {
    type Item = Vector;

    fn next(&mut self) -> Option<Vector> {
        let mut x = self.inner.next()?;
        for i in 0..x.dim() {
            if self.rng.gen::<f64>() < self.p {
                x[i] = f64::NAN;
            }
        }
        Some(x)
    }
}

/// Fills NaN coordinates with a running per-coordinate mean of the complete
/// values seen so far (0.0 until the first complete observation of that
/// coordinate). Returns dense records ready for EM.
///
/// EM's own missing-data treatment would integrate the E-step over the
/// missing coordinates; running-mean imputation is the standard streaming
/// approximation and keeps chunk processing single-pass.
pub fn impute_missing(records: impl Iterator<Item = Vector>) -> impl Iterator<Item = Vector> {
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    records.map(move |mut x| {
        if sums.len() < x.dim() {
            sums.resize(x.dim(), 0.0);
            counts.resize(x.dim(), 0);
        }
        for i in 0..x.dim() {
            if x[i].is_nan() {
                x[i] = if counts[i] > 0 { sums[i] / counts[i] as f64 } else { 0.0 };
            } else {
                sums[i] += x[i];
                counts[i] += 1;
            }
        }
        x
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_stream(n: usize) -> impl Iterator<Item = Vector> {
        std::iter::repeat_with(|| Vector::from_slice(&[1.0, 2.0])).take(n)
    }

    #[test]
    fn zero_probability_is_identity() {
        let out: Vec<Vector> = NoiseInjector::new(constant_stream(10), 0.0, (-5.0, 5.0), 1).collect();
        assert!(out.iter().all(|x| x[0] == 1.0 && x[1] == 2.0));
    }

    #[test]
    fn noise_rate_matches_probability() {
        let n = 10_000;
        let out: Vec<Vector> =
            NoiseInjector::new(constant_stream(n), 0.05, (100.0, 200.0), 2).collect();
        let noisy = out.iter().filter(|x| x[0] > 50.0).count() as f64 / n as f64;
        assert!((noisy - 0.05).abs() < 0.01, "rate {noisy}");
    }

    #[test]
    fn noise_stays_in_range() {
        let out: Vec<Vector> =
            NoiseInjector::new(constant_stream(1000), 1.0, (-3.0, 3.0), 3).collect();
        assert!(out.iter().all(|x| x.iter().all(|&v| (-3.0..=3.0).contains(&v))));
    }

    #[test]
    fn missing_rate_matches_probability() {
        let n = 5000;
        let out: Vec<Vector> = MissingValueInjector::new(constant_stream(n), 0.2, 4).collect();
        let missing =
            out.iter().flat_map(|x| x.iter()).filter(|v| v.is_nan()).count() as f64 / (2 * n) as f64;
        assert!((missing - 0.2).abs() < 0.02, "rate {missing}");
    }

    #[test]
    fn imputation_produces_finite_records() {
        let data = vec![
            Vector::from_slice(&[1.0, f64::NAN]),
            Vector::from_slice(&[f64::NAN, 4.0]),
            Vector::from_slice(&[3.0, f64::NAN]),
        ];
        let out: Vec<Vector> = impute_missing(data.into_iter()).collect();
        assert!(out.iter().all(|x| x.is_finite()));
        // First record's NaN coordinate had no history → 0.0.
        assert_eq!(out[0][1], 0.0);
        // Second record's first coordinate imputed from the mean of {1.0}.
        assert_eq!(out[1][0], 1.0);
        // Third record's second coordinate imputed from the mean of {4.0}.
        assert_eq!(out[2][1], 4.0);
    }

    #[test]
    fn imputation_tracks_running_mean() {
        let data = vec![
            Vector::from_slice(&[2.0]),
            Vector::from_slice(&[4.0]),
            Vector::from_slice(&[f64::NAN]),
        ];
        let out: Vec<Vector> = impute_missing(data.into_iter()).collect();
        assert_eq!(out[2][0], 3.0);
    }

    #[test]
    #[should_panic(expected = "noise probability")]
    fn invalid_probability_panics() {
        let _ = NoiseInjector::new(constant_stream(1), 1.5, (0.0, 1.0), 0);
    }
}
