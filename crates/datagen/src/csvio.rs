//! CSV record I/O — feeding real data sets into the pipeline and dumping
//! generated streams for external analysis. Implemented here (numeric
//! records only, no quoting/escaping) rather than pulling in a CSV crate:
//! the workloads are plain numeric tables.

use cludistream_linalg::Vector;
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A field failed to parse as f64.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        column: usize,
        /// The offending text.
        text: String,
    },
    /// A row's arity disagreed with the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields expected (from the first data row).
        expected: usize,
        /// Fields found.
        got: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::BadField { line, column, text } => {
                write!(f, "line {line}, column {column}: cannot parse {text:?} as a number")
            }
            CsvError::RaggedRow { line, expected, got } => {
                write!(f, "line {line}: expected {expected} fields, found {got}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads numeric records from CSV text. Empty lines are skipped; a first
/// line that fails to parse entirely is treated as a header and skipped;
/// all data rows must share one arity.
pub fn read_records(reader: impl BufRead) -> Result<Vec<Vector>, CsvError> {
    let mut records = Vec::new();
    let mut expected: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, usize> = fields
            .iter()
            .enumerate()
            .map(|(col, f)| f.parse::<f64>().map_err(|_| col))
            .collect();
        match parsed {
            Ok(values) => {
                if let Some(exp) = expected {
                    if values.len() != exp {
                        return Err(CsvError::RaggedRow {
                            line: line_no,
                            expected: exp,
                            got: values.len(),
                        });
                    }
                } else {
                    expected = Some(values.len());
                }
                records.push(Vector::from_vec(values));
            }
            Err(col) => {
                // A fully non-numeric first row is a header.
                if records.is_empty()
                    && expected.is_none()
                    && fields.iter().all(|f| f.parse::<f64>().is_err())
                {
                    continue;
                }
                return Err(CsvError::BadField {
                    line: line_no,
                    column: col,
                    text: fields[col].to_string(),
                });
            }
        }
    }
    Ok(records)
}

/// Writes records as CSV with an optional header row.
pub fn write_records(
    mut writer: impl Write,
    records: &[Vector],
    header: Option<&[&str]>,
) -> std::io::Result<()> {
    let mut out = String::new();
    if let Some(cols) = header {
        out.push_str(&cols.join(","));
        out.push('\n');
    }
    for r in records {
        for (i, v) in r.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    writer.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_plain_numeric_rows() {
        let csv = "1.0,2.5,-3\n4,5,6\n";
        let recs = read_records(Cursor::new(csv)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].as_slice(), &[1.0, 2.5, -3.0]);
        assert_eq!(recs[1].as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn skips_header_and_blank_lines() {
        let csv = "x,y\n\n1,2\n\n3,4\n";
        let recs = read_records(Cursor::new(csv)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn whitespace_tolerated() {
        let csv = " 1 , 2 \n";
        let recs = read_records(Cursor::new(csv)).unwrap();
        assert_eq!(recs[0].as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn bad_field_reported_with_position() {
        let csv = "1,2\n3,oops\n";
        match read_records(Cursor::new(csv)) {
            Err(CsvError::BadField { line, column, text }) => {
                assert_eq!((line, column), (2, 1));
                assert_eq!(text, "oops");
            }
            other => panic!("expected BadField, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "1,2\n3,4,5\n";
        assert!(matches!(
            read_records(Cursor::new(csv)),
            Err(CsvError::RaggedRow { line: 2, expected: 2, got: 3 })
        ));
    }

    #[test]
    fn partially_numeric_header_is_an_error() {
        // A first row that mixes numbers and text is data with a typo, not
        // a header.
        let csv = "1,abc\n";
        assert!(matches!(read_records(Cursor::new(csv)), Err(CsvError::BadField { .. })));
    }

    #[test]
    fn roundtrip_through_write() {
        let recs = vec![Vector::from_slice(&[1.5, -2.0]), Vector::from_slice(&[0.0, 3.25])];
        let mut buf = Vec::new();
        write_records(&mut buf, &recs, Some(&["a", "b"])).unwrap();
        let back = read_records(Cursor::new(buf)).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_records(Cursor::new("")).unwrap().is_empty());
    }
}
