//! NFD-substitute: a synthetic net-flow record generator.
//!
//! The paper's real workload (NFD) is net-flow data from Shanghai Telecom
//! with six attributes: source host, destination host, source TCP port,
//! destination TCP port, packet count and byte count. The data set was
//! never published, so this generator reproduces its statistically relevant
//! structure instead (DESIGN.md substitution 1):
//!
//! - traffic is a mixture of *application profiles* (web, DNS, mail, bulk
//!   transfer, scan-like anomaly) → multi-modal dense regions a GMM can
//!   capture;
//! - hosts and ports are heavy-tailed (Zipf) — a handful of servers receive
//!   most flows;
//! - packet and byte counts are log-normal-ish and strongly correlated
//!   within a profile;
//! - the traffic mix drifts: profile weights wander slowly, and with
//!   probability `p_new` per block the profile set is redrawn (a regime
//!   change, e.g. a flash crowd or an attack), giving the stream the same
//!   punctuated-drift character the CluDistream experiments rely on.
//!
//! Records come out as raw 6-d vectors; the experiments normalize them with
//! [`crate::MinMaxNormalizer`], matching the paper ("we normalize each
//! attribute").

use crate::powerlaw::Zipf;
use cludistream_gmm::sample_standard_normal;
use cludistream_linalg::Vector;
use cludistream_rng::{Rng, StdRng};

/// Number of attributes in a net-flow record.
pub const NETFLOW_DIM: usize = 6;

/// Configuration of the net-flow generator.
#[derive(Debug, Clone)]
pub struct NetflowConfig {
    /// Number of distinct hosts in the simulated network.
    pub hosts: usize,
    /// Number of application profiles active at a time.
    pub profiles: usize,
    /// Probability of a regime change (profile set redraw) per block.
    pub p_new: f64,
    /// Records per block (regime-change opportunity granularity).
    pub block_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetflowConfig {
    fn default() -> Self {
        NetflowConfig { hosts: 1000, profiles: 5, p_new: 0.05, block_len: 2000, seed: 0 }
    }
}

/// One application profile: the generative model of a flow class.
#[derive(Debug, Clone)]
struct Profile {
    /// Typical destination port (service port), jittered slightly.
    dst_port: f64,
    /// Mean of ln(packet count).
    log_packets_mean: f64,
    /// Std of ln(packet count).
    log_packets_std: f64,
    /// Mean bytes per packet.
    bytes_per_packet: f64,
    /// Std of bytes-per-packet noise.
    bytes_noise: f64,
    /// Relative weight of this profile in the mix.
    weight: f64,
    /// Bias added to the Zipf host rank so different profiles prefer
    /// different server neighbourhoods.
    host_bias: usize,
}

/// The synthetic net-flow stream. Implements `Iterator<Item = Vector>`;
/// each record is `[src_host, dst_host, src_port, dst_port, packets,
/// bytes]` as raw (unnormalized) f64 values.
#[derive(Debug)]
pub struct NetflowGenerator {
    config: NetflowConfig,
    rng: StdRng,
    host_zipf: Zipf,
    profiles: Vec<Profile>,
    emitted: usize,
    regime_id: usize,
}

/// Service ports the profile generator draws from (web, dns, mail, ssh,
/// bulk, plus an ephemeral scan band).
const SERVICE_PORTS: [f64; 6] = [80.0, 53.0, 25.0, 22.0, 443.0, 6881.0];

impl NetflowGenerator {
    /// Creates the generator and draws the initial profile set.
    pub fn new(config: NetflowConfig) -> Self {
        assert!(config.hosts >= 2, "need at least two hosts");
        assert!(config.profiles >= 1, "need at least one profile");
        assert!((0.0..=1.0).contains(&config.p_new), "p_new must be a probability");
        assert!(config.block_len > 0, "block_len must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let host_zipf = Zipf::new(config.hosts, 1.1);
        let profiles = Self::draw_profiles(&config, &mut rng);
        NetflowGenerator { config, rng, host_zipf, profiles, emitted: 0, regime_id: 0 }
    }

    /// Identity of the current traffic regime (increments on redraw).
    pub fn regime_id(&self) -> usize {
        self.regime_id
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Collects the next `n` records.
    pub fn take_chunk(&mut self, n: usize) -> Vec<Vector> {
        self.by_ref().take(n).collect()
    }

    fn draw_profiles(config: &NetflowConfig, rng: &mut StdRng) -> Vec<Profile> {
        (0..config.profiles)
            .map(|_| {
                let port = SERVICE_PORTS[rng.gen_range(0..SERVICE_PORTS.len())];
                Profile {
                    dst_port: port,
                    log_packets_mean: rng.gen_range(1.0..5.0),
                    log_packets_std: rng.gen_range(0.2..0.8),
                    bytes_per_packet: rng.gen_range(60.0..1400.0),
                    bytes_noise: rng.gen_range(10.0..120.0),
                    weight: rng.gen_range(0.5..2.0),
                    host_bias: rng.gen_range(0..config.hosts / 2),
                }
            })
            .collect()
    }

    fn pick_profile(&mut self) -> usize {
        let total: f64 = self.profiles.iter().map(|p| p.weight).sum();
        let mut target = self.rng.gen::<f64>() * total;
        for (i, p) in self.profiles.iter().enumerate() {
            target -= p.weight;
            if target <= 0.0 {
                return i;
            }
        }
        self.profiles.len() - 1
    }
}

impl Iterator for NetflowGenerator {
    type Item = Vector;

    fn next(&mut self) -> Option<Vector> {
        // Regime boundary.
        if self.emitted > 0 && self.emitted.is_multiple_of(self.config.block_len) {
            if self.rng.gen::<f64>() < self.config.p_new {
                self.profiles = Self::draw_profiles(&self.config, &mut self.rng);
                self.regime_id += 1;
            } else {
                // Slow drift: profile weights random-walk a little.
                for p in &mut self.profiles {
                    p.weight = (p.weight * self.rng.gen_range(0.9..1.1)).clamp(0.1, 4.0);
                }
            }
        }
        self.emitted += 1;

        let idx = self.pick_profile();
        let p = self.profiles[idx].clone();

        let src_host = self.host_zipf.sample(&mut self.rng) as f64;
        let dst_host =
            ((self.host_zipf.sample(&mut self.rng) + p.host_bias - 1) % self.config.hosts + 1) as f64;
        // Clients use ephemeral ports; service port gets small jitter.
        let src_port = self.rng.gen_range(32768.0..61000.0);
        let dst_port = p.dst_port + self.rng.gen_range(-2.0..=2.0);
        let packets =
            (p.log_packets_mean + p.log_packets_std * sample_standard_normal(&mut self.rng))
                .exp()
                .max(1.0);
        let bytes =
            packets * (p.bytes_per_packet + p.bytes_noise * sample_standard_normal(&mut self.rng))
                .max(40.0);

        Some(Vector::from_slice(&[src_host, dst_host, src_port, dst_port, packets, bytes]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_have_six_finite_attributes() {
        let mut g = NetflowGenerator::new(NetflowConfig::default());
        for r in g.by_ref().take(200) {
            assert_eq!(r.dim(), NETFLOW_DIM);
            assert!(r.is_finite());
        }
    }

    #[test]
    fn attribute_ranges_plausible() {
        let mut g = NetflowGenerator::new(NetflowConfig { seed: 1, ..Default::default() });
        for r in g.by_ref().take(500) {
            assert!(r[0] >= 1.0 && r[0] <= 1000.0, "src host {}", r[0]);
            assert!(r[1] >= 1.0 && r[1] <= 1000.0, "dst host {}", r[1]);
            assert!(r[2] >= 32768.0 && r[2] < 61000.0, "src port {}", r[2]);
            assert!(r[3] > 0.0 && r[3] < 65536.0, "dst port {}", r[3]);
            assert!(r[4] >= 1.0, "packets {}", r[4]);
            assert!(r[5] >= 40.0, "bytes {}", r[5]);
        }
    }

    #[test]
    fn hosts_are_heavy_tailed() {
        let mut g = NetflowGenerator::new(NetflowConfig { seed: 2, ..Default::default() });
        let recs = g.take_chunk(5000);
        // Top-10 source hosts should own a disproportionate share of flows.
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r[0] as u64).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().cloned().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / recs.len() as f64 > 0.15,
            "top-10 hosts carry only {top10}/{}",
            recs.len()
        );
    }

    #[test]
    fn packets_and_bytes_correlated() {
        let mut g = NetflowGenerator::new(NetflowConfig { seed: 3, p_new: 0.0, ..Default::default() });
        let recs = g.take_chunk(3000);
        let n = recs.len() as f64;
        let (mx, my) = (
            recs.iter().map(|r| r[4]).sum::<f64>() / n,
            recs.iter().map(|r| r[5]).sum::<f64>() / n,
        );
        let cov = recs.iter().map(|r| (r[4] - mx) * (r[5] - my)).sum::<f64>() / n;
        let (sx, sy) = (
            (recs.iter().map(|r| (r[4] - mx).powi(2)).sum::<f64>() / n).sqrt(),
            (recs.iter().map(|r| (r[5] - my).powi(2)).sum::<f64>() / n).sqrt(),
        );
        let corr = cov / (sx * sy);
        assert!(corr > 0.5, "packet/byte correlation too weak: {corr}");
    }

    #[test]
    fn regime_changes_with_p_one() {
        let mut g = NetflowGenerator::new(NetflowConfig {
            p_new: 1.0,
            block_len: 100,
            seed: 4,
            ..Default::default()
        });
        let _ = g.take_chunk(1000);
        assert_eq!(g.regime_id(), 9);
    }

    #[test]
    fn no_regime_changes_with_p_zero() {
        let mut g = NetflowGenerator::new(NetflowConfig {
            p_new: 0.0,
            block_len: 100,
            seed: 5,
            ..Default::default()
        });
        let _ = g.take_chunk(1000);
        assert_eq!(g.regime_id(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NetflowConfig { seed: 6, ..Default::default() };
        let a: Vec<Vector> = NetflowGenerator::new(cfg.clone()).take(100).collect();
        let b: Vec<Vector> = NetflowGenerator::new(cfg).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dst_ports_cluster_on_services() {
        let mut g = NetflowGenerator::new(NetflowConfig { seed: 7, p_new: 0.0, ..Default::default() });
        let recs = g.take_chunk(2000);
        let near_service = recs
            .iter()
            .filter(|r| SERVICE_PORTS.iter().any(|&p| (r[3] - p).abs() <= 2.0))
            .count();
        assert_eq!(near_service, recs.len());
    }
}
