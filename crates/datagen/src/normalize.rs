//! Attribute normalization.
//!
//! The paper normalizes each NFD attribute "to reduce the data range effect
//! of different attributes". [`MinMaxNormalizer`] is the batch version
//! (fit on a sample, apply to the stream); [`StreamingNormalizer`] adapts
//! its range on the fly, which is what a remote site with no global view
//! must do.

use cludistream_linalg::Vector;

/// Min-max normalizer mapping each attribute to `[0, 1]` based on the
/// ranges observed in a fitting sample. Constant attributes map to 0.5.
#[derive(Debug, Clone)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxNormalizer {
    /// Fits the per-attribute ranges on `sample`. Panics on empty input or
    /// inconsistent dimensions.
    pub fn fit(sample: &[Vector]) -> Self {
        assert!(!sample.is_empty(), "min-max fit: empty sample");
        let d = sample[0].dim();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for x in sample {
            assert_eq!(x.dim(), d, "min-max fit: inconsistent dimensions");
            for i in 0..d {
                mins[i] = mins[i].min(x[i]);
                maxs[i] = maxs[i].max(x[i]);
            }
        }
        MinMaxNormalizer { mins, maxs }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Maps one record into `[0,1]^d`, clamping values outside the fitted
    /// range.
    pub fn transform(&self, x: &Vector) -> Vector {
        assert_eq!(x.dim(), self.dim(), "min-max transform: dimension mismatch");
        (0..x.dim())
            .map(|i| {
                let range = self.maxs[i] - self.mins[i];
                if range <= 0.0 {
                    0.5
                } else {
                    ((x[i] - self.mins[i]) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Transforms a whole batch.
    pub fn transform_batch(&self, data: &[Vector]) -> Vec<Vector> {
        data.iter().map(|x| self.transform(x)).collect()
    }
}

/// Streaming z-score normalizer: maintains running per-attribute mean and
/// variance (Welford) and emits `(x - mean) / std`. Until two records have
/// been seen, records pass through centred only.
#[derive(Debug, Clone)]
pub struct StreamingNormalizer {
    count: u64,
    means: Vec<f64>,
    /// Sum of squared deviations (Welford's M2).
    m2: Vec<f64>,
}

impl StreamingNormalizer {
    /// Creates a normalizer for dimension `d`.
    pub fn new(d: usize) -> Self {
        StreamingNormalizer { count: 0, means: vec![0.0; d], m2: vec![0.0; d] }
    }

    /// Records seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current per-attribute standard deviation estimate (population).
    pub fn stds(&self) -> Vec<f64> {
        self.m2
            .iter()
            .map(|&m2| if self.count > 1 { (m2 / self.count as f64).sqrt() } else { 0.0 })
            .collect()
    }

    /// Updates the running statistics with `x` and returns the normalized
    /// record under the *updated* statistics.
    pub fn push(&mut self, x: &Vector) -> Vector {
        assert_eq!(x.dim(), self.means.len(), "streaming normalize: dimension mismatch");
        self.count += 1;
        let n = self.count as f64;
        for i in 0..x.dim() {
            let delta = x[i] - self.means[i];
            self.means[i] += delta / n;
            self.m2[i] += delta * (x[i] - self.means[i]);
        }
        let stds = self.stds();
        (0..x.dim())
            .map(|i| {
                let s = stds[i];
                if s > 0.0 {
                    (x[i] - self.means[i]) / s
                } else {
                    x[i] - self.means[i]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_to_unit_interval() {
        let sample = vec![
            Vector::from_slice(&[0.0, 100.0]),
            Vector::from_slice(&[10.0, 300.0]),
            Vector::from_slice(&[5.0, 200.0]),
        ];
        let n = MinMaxNormalizer::fit(&sample);
        let t = n.transform(&Vector::from_slice(&[5.0, 200.0]));
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[1] - 0.5).abs() < 1e-12);
        let lo = n.transform(&Vector::from_slice(&[0.0, 100.0]));
        assert_eq!(lo.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn minmax_clamps_out_of_range() {
        let sample = vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[1.0])];
        let n = MinMaxNormalizer::fit(&sample);
        assert_eq!(n.transform(&Vector::from_slice(&[5.0]))[0], 1.0);
        assert_eq!(n.transform(&Vector::from_slice(&[-5.0]))[0], 0.0);
    }

    #[test]
    fn minmax_constant_attribute_maps_to_half() {
        let sample = vec![Vector::from_slice(&[7.0]), Vector::from_slice(&[7.0])];
        let n = MinMaxNormalizer::fit(&sample);
        assert_eq!(n.transform(&Vector::from_slice(&[7.0]))[0], 0.5);
    }

    #[test]
    fn minmax_batch_matches_single() {
        let sample = vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[2.0])];
        let n = MinMaxNormalizer::fit(&sample);
        let batch = n.transform_batch(&sample);
        assert_eq!(batch[1], n.transform(&sample[1]));
    }

    #[test]
    fn streaming_stats_converge() {
        let mut n = StreamingNormalizer::new(1);
        // Feed a deterministic sequence with mean 10, variance ~8.25
        // (values 5..=15 cyclic).
        for i in 0..1100 {
            let v = 5.0 + (i % 11) as f64;
            let _ = n.push(&Vector::from_slice(&[v]));
        }
        assert_eq!(n.count(), 1100);
        let std = n.stds()[0];
        // Population variance of 5..=15 uniform discrete = (11²-1)/12 = 10.
        assert!((std * std - 10.0).abs() < 0.1, "var {}", std * std);
    }

    #[test]
    fn streaming_normalized_output_is_standardized() {
        let mut n = StreamingNormalizer::new(1);
        let mut out = Vec::new();
        for i in 0..2000 {
            let v = (i % 7) as f64;
            out.push(n.push(&Vector::from_slice(&[v]))[0]);
        }
        // Late outputs should have ~zero mean and ~unit variance.
        let tail = &out[1000..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / tail.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn streaming_first_record_passes_through_centred() {
        let mut n = StreamingNormalizer::new(2);
        let out = n.push(&Vector::from_slice(&[3.0, -1.0]));
        // After one record the mean equals the record → output 0.
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn minmax_empty_sample_panics() {
        let _ = MinMaxNormalizer::fit(&[]);
    }
}
