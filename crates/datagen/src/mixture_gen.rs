use cludistream_gmm::{Gaussian, Mixture};
use cludistream_linalg::{Matrix, Vector};
use cludistream_rng::Rng;

/// Parameters for random mixture generation.
#[derive(Debug, Clone)]
pub struct MixtureGenConfig {
    /// Dimensionality of the generated Gaussians.
    pub dim: usize,
    /// Number of components.
    pub k: usize,
    /// Component means are drawn uniformly from this interval per axis.
    pub mean_range: (f64, f64),
    /// Covariance eigenvalues are drawn uniformly from this interval.
    pub var_range: (f64, f64),
    /// Component weights are drawn uniformly from [1, weight_skew] before
    /// normalization (1.0 = near-uniform weights).
    pub weight_skew: f64,
}

impl Default for MixtureGenConfig {
    fn default() -> Self {
        MixtureGenConfig {
            dim: 4,
            k: 5,
            mean_range: (-10.0, 10.0),
            var_range: (0.2, 1.5),
            weight_skew: 3.0,
        }
    }
}

/// Generates a random symmetric positive-definite matrix with eigenvalues
/// uniform in `var_range`, by rotating a random diagonal through a product
/// of random Givens rotations.
pub fn random_spd_matrix<R: Rng + ?Sized>(
    dim: usize,
    var_range: (f64, f64),
    rng: &mut R,
) -> Matrix {
    assert!(dim > 0, "random_spd_matrix: dim must be positive");
    let (lo, hi) = var_range;
    assert!(lo > 0.0 && hi >= lo, "random_spd_matrix: invalid var_range");
    let mut m = Matrix::from_diag(
        &(0..dim).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<_>>(),
    );
    // Conjugate by random Givens rotations: m ← G m Gᵀ keeps symmetry and
    // the eigenvalue spectrum while mixing axes.
    for _ in 0..(2 * dim) {
        if dim < 2 {
            break;
        }
        let i = rng.gen_range(0..dim);
        let j = loop {
            let j = rng.gen_range(0..dim);
            if j != i {
                break j;
            }
        };
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let (c, s) = (theta.cos(), theta.sin());
        // Apply rotation to rows i, j then columns i, j.
        for col in 0..dim {
            let a = m[(i, col)];
            let b = m[(j, col)];
            m[(i, col)] = c * a - s * b;
            m[(j, col)] = s * a + c * b;
        }
        for row in 0..dim {
            let a = m[(row, i)];
            let b = m[(row, j)];
            m[(row, i)] = c * a - s * b;
            m[(row, j)] = s * a + c * b;
        }
    }
    m.symmetrize();
    m
}

/// Draws a random Gaussian mixture according to `config`.
pub fn random_mixture<R: Rng + ?Sized>(config: &MixtureGenConfig, rng: &mut R) -> Mixture {
    assert!(config.k > 0 && config.dim > 0, "random_mixture: k and dim must be positive");
    let comps: Vec<Gaussian> = (0..config.k)
        .map(|_| {
            let mean: Vector = (0..config.dim)
                .map(|_| rng.gen_range(config.mean_range.0..=config.mean_range.1))
                .collect();
            let cov = random_spd_matrix(config.dim, config.var_range, rng);
            Gaussian::new(mean, cov).expect("random SPD covariance is valid")
        })
        .collect();
    let weights: Vec<f64> =
        (0..config.k).map(|_| rng.gen_range(1.0..=config.weight_skew.max(1.0))).collect();
    Mixture::new(comps, weights).expect("generated parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cludistream_linalg::jacobi_eigen;
    use cludistream_rng::StdRng;

    #[test]
    fn spd_matrix_is_spd_with_bounded_spectrum() {
        let mut rng = StdRng::seed_from_u64(1);
        for dim in [1, 2, 4, 8] {
            let m = random_spd_matrix(dim, (0.5, 2.0), &mut rng);
            let e = jacobi_eigen(&m, 100).unwrap();
            assert!(e.is_positive_definite(0.0), "dim {dim} not SPD");
            for &l in &e.values {
                assert!(l > 0.49 && l < 2.01, "eigenvalue {l} out of range");
            }
        }
    }

    #[test]
    fn spd_matrix_trace_preserved_by_rotations() {
        // Givens conjugation preserves the eigenvalues, hence the trace stays
        // within the sum-of-range bounds.
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_spd_matrix(4, (1.0, 1.0), &mut rng);
        assert!((m.trace() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn random_mixture_respects_config() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MixtureGenConfig { dim: 3, k: 4, ..Default::default() };
        let m = random_mixture(&cfg, &mut rng);
        assert_eq!(m.k(), 4);
        assert_eq!(m.dim(), 3);
        assert!((m.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for c in m.components() {
            for v in c.mean().iter() {
                assert!((-10.0..=10.0).contains(v));
            }
        }
    }

    #[test]
    fn mixtures_differ_across_draws() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = MixtureGenConfig::default();
        let a = random_mixture(&cfg, &mut rng);
        let b = random_mixture(&cfg, &mut rng);
        assert!(a.components()[0].mean() != b.components()[0].mean());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MixtureGenConfig::default();
        let a = random_mixture(&cfg, &mut StdRng::seed_from_u64(5));
        let b = random_mixture(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.components()[0].mean(), b.components()[0].mean());
    }

    #[test]
    fn one_dimensional_mixture_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = MixtureGenConfig { dim: 1, k: 3, ..Default::default() };
        let m = random_mixture(&cfg, &mut rng);
        assert_eq!(m.dim(), 1);
        assert!(m.components().iter().all(|c| c.cov()[(0, 0)] > 0.0));
    }
}
