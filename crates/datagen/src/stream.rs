use crate::{random_mixture, MixtureGenConfig};
use cludistream_gmm::Mixture;
use cludistream_linalg::Vector;
use cludistream_rng::{Rng, StdRng};

/// Configuration of the paper's synthetic evolving stream: "the data records
/// in each synthetic data set follow a series of Gaussian distributions. To
/// reflect the evolution of the stream data over time, we generate new
/// Gaussian distribution for every 2K points by probability P_d."
#[derive(Debug, Clone)]
pub struct EvolvingStreamConfig {
    /// Record dimensionality.
    pub dim: usize,
    /// Components per regime mixture.
    pub k: usize,
    /// Probability of switching to a freshly drawn mixture at each regime
    /// boundary (the paper's `P_d`, default 0.1).
    pub p_new: f64,
    /// Records between regime-change opportunities (the paper's 2K points).
    pub regime_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Parameters of the random mixtures drawn at regime changes.
    pub mixture: MixtureGenConfig,
}

impl Default for EvolvingStreamConfig {
    fn default() -> Self {
        EvolvingStreamConfig {
            dim: 4,
            k: 5,
            p_new: 0.1,
            regime_len: 2000,
            seed: 0,
            mixture: MixtureGenConfig::default(),
        }
    }
}

/// An infinite synthetic data stream drawn from a series of random Gaussian
/// mixtures. Iterating yields records; [`EvolvingStream::regime_id`] exposes
/// the identity of the generating distribution so experiments can score
/// clustering quality against ground truth.
#[derive(Debug)]
pub struct EvolvingStream {
    config: EvolvingStreamConfig,
    rng: StdRng,
    current: Mixture,
    /// Records emitted so far.
    emitted: usize,
    /// Identity of the current generating regime (increments on change).
    regime_id: usize,
    /// `(start_index, regime_id)` history of regime switches.
    history: Vec<(usize, usize)>,
}

impl EvolvingStream {
    /// Creates the stream, drawing the first regime's mixture immediately.
    pub fn new(mut config: EvolvingStreamConfig) -> Self {
        assert!(config.regime_len > 0, "regime_len must be positive");
        assert!((0.0..=1.0).contains(&config.p_new), "p_new must be a probability");
        config.mixture.dim = config.dim;
        config.mixture.k = config.k;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let current = random_mixture(&config.mixture, &mut rng);
        EvolvingStream {
            config,
            rng,
            current,
            emitted: 0,
            regime_id: 0,
            history: vec![(0, 0)],
        }
    }

    /// Identity of the regime generating the *next* record.
    pub fn regime_id(&self) -> usize {
        self.regime_id
    }

    /// The mixture generating the *next* record (ground truth).
    pub fn current_mixture(&self) -> &Mixture {
        &self.current
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// `(start_index, regime_id)` pairs, in order; the ground-truth event
    /// table for evolving-analysis experiments.
    pub fn history(&self) -> &[(usize, usize)] {
        &self.history
    }

    /// Collects the next `n` records into a vector.
    pub fn take_chunk(&mut self, n: usize) -> Vec<Vector> {
        self.by_ref().take(n).collect()
    }
}

impl Iterator for EvolvingStream {
    type Item = Vector;

    fn next(&mut self) -> Option<Vector> {
        // Regime boundary every `regime_len` records (not at the start).
        if self.emitted > 0 && self.emitted.is_multiple_of(self.config.regime_len) {
            let roll: f64 = self.rng.gen();
            if roll < self.config.p_new {
                self.current = random_mixture(&self.config.mixture, &mut self.rng);
                self.regime_id += 1;
                self.history.push((self.emitted, self.regime_id));
            }
        }
        self.emitted += 1;
        Some(self.current.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(p_new: f64, seed: u64) -> EvolvingStreamConfig {
        EvolvingStreamConfig {
            dim: 2,
            k: 3,
            p_new,
            regime_len: 100,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn emits_records_of_right_dimension() {
        let mut s = EvolvingStream::new(config(0.1, 1));
        let recs = s.take_chunk(50);
        assert_eq!(recs.len(), 50);
        assert!(recs.iter().all(|r| r.dim() == 2 && r.is_finite()));
    }

    #[test]
    fn p_zero_never_changes_regime() {
        let mut s = EvolvingStream::new(config(0.0, 2));
        let _ = s.take_chunk(1000);
        assert_eq!(s.regime_id(), 0);
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn p_one_changes_every_boundary() {
        let mut s = EvolvingStream::new(config(1.0, 3));
        let _ = s.take_chunk(1000);
        // Boundaries at 100, 200, ..., 900 → 9 changes after 1000 records.
        assert_eq!(s.regime_id(), 9);
        assert_eq!(s.history().len(), 10);
        assert_eq!(s.history()[1], (100, 1));
    }

    #[test]
    fn change_rate_approximates_p_new() {
        let mut s = EvolvingStream::new(config(0.3, 4));
        let _ = s.take_chunk(100 * 400);
        let boundaries = 399.0;
        let rate = s.regime_id() as f64 / boundaries;
        assert!((rate - 0.3).abs() < 0.08, "rate {rate}");
    }

    #[test]
    fn regime_change_shifts_distribution() {
        let mut s = EvolvingStream::new(EvolvingStreamConfig {
            dim: 1,
            k: 1,
            p_new: 1.0,
            regime_len: 500,
            seed: 5,
            ..Default::default()
        });
        let before: Vec<Vector> = s.take_chunk(500);
        let after: Vec<Vector> = s.take_chunk(500);
        let mean = |v: &[Vector]| v.iter().map(|x| x[0]).sum::<f64>() / v.len() as f64;
        // With means drawn from (-10,10) and unit-ish variances, two draws
        // almost surely differ by more than the sampling noise.
        assert!((mean(&before) - mean(&after)).abs() > 0.2, "means suspiciously close");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<Vector> = EvolvingStream::new(config(0.5, 6)).take(200).collect();
        let b: Vec<Vector> = EvolvingStream::new(config(0.5, 6)).take(200).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn history_tracks_start_indices() {
        let mut s = EvolvingStream::new(config(1.0, 7));
        let _ = s.take_chunk(350);
        let h = s.history();
        assert_eq!(h[0], (0, 0));
        assert!(h[1..].iter().all(|&(start, _)| start % 100 == 0));
    }

    #[test]
    #[should_panic(expected = "p_new must be a probability")]
    fn invalid_probability_panics() {
        let _ = EvolvingStream::new(config(1.5, 8));
    }
}
