#![warn(missing_docs)]

//! Synthetic workload generation for the CluDistream reproduction.
//!
//! The paper evaluates on (a) synthetic streams whose records "follow a
//! series of Gaussian distributions", with a new distribution generated
//! every 2K points with probability `P_d`, optionally corrupted by noise;
//! and (b) the NFD real data set — net-flow records from Shanghai Telecom
//! with six attributes. NFD was never published, so [`netflow`] provides a
//! statistically analogous generator (see DESIGN.md, substitution 1).
//!
//! - [`EvolvingStream`] — the paper's synthetic evolving-GMM stream.
//! - [`noise`] — uniform outlier injection and missing-value simulation
//!   ("noisy or incomplete data records").
//! - [`netflow::NetflowGenerator`] — the NFD substitute.
//! - [`normalize`] — the per-attribute normalization the paper applies to
//!   NFD ("we normalize each attribute to reduce the data range effect").
//! - [`Histogram`] — 1-d histograms for the Figure 3 reproduction.
//! - [`powerlaw`] — Zipf sampling (heavy-tailed hosts/ports) and the
//!   power-law event process of Sec. 5.1.3.
//!
//! # Example
//!
//! ```
//! use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig};
//!
//! let mut stream = EvolvingStream::new(EvolvingStreamConfig {
//!     dim: 2,
//!     k: 3,
//!     p_new: 0.1,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let records: Vec<_> = stream.by_ref().take(100).collect();
//! assert_eq!(records.len(), 100);
//! assert_eq!(records[0].dim(), 2);
//! ```

pub mod csvio;
mod histogram;
mod mixture_gen;
pub mod netflow;
pub mod noise;
pub mod normalize;
pub mod powerlaw;
mod props;
mod stream;

pub use csvio::{read_records, write_records, CsvError};
pub use histogram::Histogram;
pub use mixture_gen::{random_mixture, random_spd_matrix, MixtureGenConfig};
pub use netflow::{NetflowConfig, NetflowGenerator};
pub use noise::{impute_missing, MissingValueInjector, NoiseInjector};
pub use normalize::{MinMaxNormalizer, StreamingNormalizer};
pub use powerlaw::{PowerLawEventProcess, Zipf};
pub use stream::{EvolvingStream, EvolvingStreamConfig};
