//! Heavy-tailed samplers.
//!
//! Two uses in the reproduction: the NFD-substitute netflow generator needs
//! Zipf-distributed hosts and ports (real traffic is famously heavy-tailed),
//! and Sec. 5.1.3 of the paper argues via a power-law event process that the
//! probability `P_d` of a genuinely new distribution is small (< 0.1),
//! which is what makes test-and-cluster profitable.

use cludistream_rng::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank = k) ∝ k^(-s)`. Sampling is inverse-CDF over a precomputed
/// table, O(log n) per draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, length `n`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` ranks and exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf: n must be positive");
        assert!(s > 0.0 && s.is_finite(), "zipf: exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of elements < u, i.e. the index
        // of the first cdf entry >= u; ranks are 1-based.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Probability of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

/// The power-law event process of paper Sec. 5.1.3: event frequencies
/// converge to `p(y) = β y^(-q)` with `q = 1/(1-γ)` where γ is the average
/// growth rate; the expected probability of a *new* distribution is
/// `P_d = β/(2-q)`.
///
/// This struct evaluates that steady-state model; it backs the Theorem 4
/// cost analysis and the Fig. 14 discussion ("in real applications it is
/// unlikely for every new data chunk to have many different distributions").
#[derive(Debug, Clone, Copy)]
pub struct PowerLawEventProcess {
    /// Normalization constant β.
    pub beta: f64,
    /// Average growth rate γ ∈ (0, 1) ∖ {values making q = 2}.
    pub gamma: f64,
}

impl PowerLawEventProcess {
    /// Creates the process; requires `0 < gamma < 1`.
    pub fn new(beta: f64, gamma: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in (0,1)");
        PowerLawEventProcess { beta, gamma }
    }

    /// Exponent `q = 1/(1-γ)`.
    pub fn q(&self) -> f64 {
        1.0 / (1.0 - self.gamma)
    }

    /// Steady-state density `p(y) = β y^(-q)` for `y ≥ 1`.
    pub fn density(&self, y: f64) -> f64 {
        assert!(y >= 1.0, "density defined for y >= 1");
        self.beta * y.powf(-self.q())
    }

    /// Expected probability of a new underlying distribution,
    /// `P_d = β/(2-q)`. Only meaningful for `q < 2` (γ < 0.5).
    pub fn p_d(&self) -> f64 {
        let q = self.q();
        assert!(q < 2.0, "P_d formula requires q < 2 (gamma < 0.5)");
        self.beta / (2.0 - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cludistream_rng::StdRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_is_most_likely() {
        let z = Zipf::new(50, 1.5);
        for k in 2..=50 {
            assert!(z.pmf(1) > z.pmf(k));
        }
    }

    #[test]
    fn sample_frequencies_track_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=10 {
            let freq = counts[k - 1] as f64 / n as f64;
            assert!((freq - z.pmf(k)).abs() < 0.01, "rank {k}: {freq} vs {}", z.pmf(k));
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn higher_exponent_more_skewed() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 2.0);
        assert!(steep.pmf(1) > flat.pmf(1));
    }

    #[test]
    fn power_law_process_formulas() {
        // γ = 0.2 → q = 1.25; β = 0.05 → P_d = 0.05/0.75 ≈ 0.0667 < 0.1,
        // matching the paper's claim that P_d is "often less than 0.1".
        let p = PowerLawEventProcess::new(0.05, 0.2);
        assert!((p.q() - 1.25).abs() < 1e-12);
        assert!((p.p_d() - 0.05 / 0.75).abs() < 1e-12);
        assert!(p.p_d() < 0.1);
        assert!((p.density(1.0) - 0.05).abs() < 1e-12);
        assert!(p.density(2.0) < p.density(1.0));
    }

    #[test]
    #[should_panic(expected = "q < 2")]
    fn p_d_requires_small_q() {
        let _ = PowerLawEventProcess::new(0.05, 0.8).p_d();
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zipf_empty_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
