use cludistream_linalg::Vector;

/// Fixed-bin 1-d histogram over a closed range.
///
/// Backs the Figure 3 reproduction (histograms of the 1-d synthetic data in
/// a horizon at three time points) and doubles as a crude density estimate
/// for comparing fitted mixtures against data (Figure 4).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Records outside `[lo, hi]`.
    outliers: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo && lo.is_finite() && hi.is_finite(), "invalid histogram range");
        Histogram { lo, hi, counts: vec![0; bins], outliers: 0, total: 0 }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins() as f64
    }

    /// Adds one scalar observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if !(self.lo..=self.hi).contains(&x) {
            self.outliers += 1;
            return;
        }
        let idx = (((x - self.lo) / self.bin_width()) as usize).min(self.bins() - 1);
        self.counts[idx] += 1;
    }

    /// Adds the `coord`-th coordinate of every record.
    pub fn add_records(&mut self, records: &[Vector], coord: usize) {
        for r in records {
            self.add(r[coord]);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total observations (including outliers).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Normalized density per bin (integrates to ≤ 1 over the range; the
    /// deficit is mass that fell outside). Empty histograms yield zeros.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins()];
        }
        let norm = self.total as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Index of the fullest bin (first on ties), or `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == self.outliers {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn outliers_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.1);
        h.add(f64::NAN);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn density_integrates_to_one_without_outliers() {
        let mut h = Histogram::new(0.0, 2.0, 8);
        for i in 0..100 {
            h.add((i % 20) as f64 / 10.0);
        }
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn add_records_selects_coordinate() {
        let recs =
            vec![Vector::from_slice(&[1.0, 100.0]), Vector::from_slice(&[2.0, 200.0])];
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.add_records(&recs, 0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 2);
    }
}
