/// Configuration for the downhill-simplex method.
///
/// The coefficients default to the classical Nelder–Mead values:
/// reflection 1, expansion 2, contraction ½, shrink ½.
#[derive(Debug, Clone)]
pub struct NelderMeadConfig {
    /// Reflection coefficient (α > 0).
    pub alpha: f64,
    /// Expansion coefficient (γ > 1).
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    pub sigma: f64,
    /// Maximum objective evaluations before giving up.
    pub max_evals: usize,
    /// Objective-spread tolerance: together with [`Self::x_tol`], terminate
    /// when the simplex's best-to-worst objective spread falls below this
    /// (absolute) tolerance AND the simplex diameter is below `x_tol`.
    /// Requiring both avoids premature stops on simplexes that happen to
    /// straddle the optimum symmetrically.
    pub f_tol: f64,
    /// Simplex-diameter tolerance (max vertex distance to the best vertex);
    /// see [`Self::f_tol`].
    pub x_tol: f64,
    /// Relative step used to build the initial simplex from the start point
    /// (per coordinate; an absolute fallback is used for zero coordinates).
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            max_evals: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Best point found.
    pub point: Vec<f64>,
    /// Objective value at `point`.
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// True when a tolerance (rather than the evaluation budget) stopped
    /// the iteration.
    pub converged: bool,
}

/// The Nelder–Mead downhill-simplex minimizer.
///
/// Maintains a simplex of `n+1` vertices in `n` dimensions and iteratively
/// replaces the worst vertex via reflection, expansion, or contraction,
/// shrinking the whole simplex toward the best vertex when all else fails.
#[derive(Debug, Clone, Default)]
pub struct NelderMead {
    config: NelderMeadConfig,
}

impl NelderMead {
    /// Creates a minimizer with the given configuration.
    pub fn new(config: NelderMeadConfig) -> Self {
        NelderMead { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &NelderMeadConfig {
        &self.config
    }

    /// Minimizes `f` starting from `x0`. Panics when `x0` is empty.
    pub fn minimize<F>(&self, mut f: F, x0: &[f64]) -> OptimizeResult
    where
        F: FnMut(&[f64]) -> f64,
    {
        let n = x0.len();
        assert!(n > 0, "nelder-mead: empty start point");
        let cfg = &self.config;

        // Initial simplex: start point plus one perturbed vertex per axis.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            let step = if v[i] != 0.0 { cfg.initial_step * v[i].abs() } else { cfg.initial_step };
            v[i] += step;
            simplex.push(v);
        }

        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(x);
            // Treat non-finite objective values as very bad rather than
            // poisoning comparisons with NaN.
            if v.is_finite() {
                v
            } else {
                f64::MAX
            }
        };

        let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

        let mut converged = false;
        while evals < cfg.max_evals {
            // Order vertices by objective value (best first).
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Termination: objective spread and simplex diameter.
            let spread = values[worst] - values[best];
            let diameter = simplex
                .iter()
                .map(|v| {
                    v.iter()
                        .zip(&simplex[best])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(0.0f64, f64::max);
            if spread.abs() <= cfg.f_tol && diameter <= cfg.x_tol {
                converged = true;
                break;
            }

            // Centroid of all vertices except the worst.
            let mut centroid = vec![0.0; n];
            for (idx, v) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= n as f64;
            }

            let lerp = |from: &[f64], to: &[f64], t: f64| -> Vec<f64> {
                from.iter().zip(to).map(|(a, b)| a + t * (b - a)).collect()
            };

            // Reflection: x_r = centroid + alpha (centroid - worst).
            let reflected = lerp(&centroid, &simplex[worst], -cfg.alpha);
            let f_reflected = eval(&reflected, &mut evals);

            if f_reflected < values[best] {
                // Expansion.
                let expanded = lerp(&centroid, &simplex[worst], -cfg.alpha * cfg.gamma);
                let f_expanded = eval(&expanded, &mut evals);
                if f_expanded < f_reflected {
                    simplex[worst] = expanded;
                    values[worst] = f_expanded;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = f_reflected;
                }
                continue;
            }
            if f_reflected < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
                continue;
            }

            // Contraction (outside if the reflection improved on the worst,
            // inside otherwise).
            let (contracted, f_contracted) = if f_reflected < values[worst] {
                let c = lerp(&centroid, &reflected, cfg.rho);
                let fc = eval(&c, &mut evals);
                (c, fc)
            } else {
                let c = lerp(&centroid, &simplex[worst], cfg.rho);
                let fc = eval(&c, &mut evals);
                (c, fc)
            };
            if f_contracted < values[worst].min(f_reflected) {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
                continue;
            }

            // Shrink toward the best vertex.
            let best_vertex = simplex[best].clone();
            for idx in 0..=n {
                if idx == best {
                    continue;
                }
                simplex[idx] = lerp(&best_vertex, &simplex[idx], cfg.sigma);
                values[idx] = eval(&simplex[idx], &mut evals);
            }
        }

        let (best_idx, &best_val) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
            .expect("non-empty simplex");
        OptimizeResult {
            point: simplex[best_idx].clone(),
            value: best_val,
            evaluations: evals,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        let (a, b) = (1.0, 100.0);
        (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn sphere_converges_to_origin() {
        let nm = NelderMead::default();
        let r = nm.minimize(sphere, &[3.0, -4.0, 2.0]);
        assert!(r.converged, "should converge: {r:?}");
        assert!(r.value < 1e-8, "value {}", r.value);
        for x in &r.point {
            assert!(x.abs() < 1e-3);
        }
    }

    #[test]
    fn rosenbrock_reaches_valley() {
        let nm = NelderMead::new(NelderMeadConfig { max_evals: 20_000, ..Default::default() });
        let r = nm.minimize(rosenbrock, &[-1.2, 1.0]);
        assert!(r.value < 1e-6, "value {}", r.value);
        assert!((r.point[0] - 1.0).abs() < 1e-2);
        assert!((r.point[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn one_dimensional_quadratic() {
        let nm = NelderMead::default();
        let r = nm.minimize(|x| (x[0] - 5.0).powi(2) + 3.0, &[0.0]);
        assert!((r.point[0] - 5.0).abs() < 1e-4);
        assert!((r.value - 3.0).abs() < 1e-8);
    }

    #[test]
    fn respects_evaluation_budget() {
        let nm = NelderMead::new(NelderMeadConfig { max_evals: 25, ..Default::default() });
        let r = nm.minimize(rosenbrock, &[-1.2, 1.0]);
        // Budget plus at most one in-flight iteration's evaluations.
        assert!(r.evaluations <= 25 + 4, "evaluations {}", r.evaluations);
    }

    #[test]
    fn handles_non_finite_objective_regions() {
        // Objective is NaN for x < 0; minimum at x = 1.
        let nm = NelderMead::default();
        let r = nm.minimize(
            |x| if x[0] < 0.0 { f64::NAN } else { (x[0] - 1.0).powi(2) },
            &[4.0],
        );
        assert!((r.point[0] - 1.0).abs() < 1e-4, "point {:?}", r.point);
    }

    #[test]
    fn zero_start_point_still_moves() {
        let nm = NelderMead::default();
        let r = nm.minimize(|x| (x[0] - 0.5).powi(2), &[0.0]);
        assert!((r.point[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn returns_start_when_already_optimal() {
        let nm = NelderMead::default();
        let r = nm.minimize(sphere, &[0.0, 0.0]);
        assert!(r.value < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty start point")]
    fn empty_start_panics() {
        let _ = NelderMead::default().minimize(sphere, &[]);
    }

    mod props {
        use super::*;
        use cludistream_rng::{check, Rng, StdRng};

        fn coords(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(lo..hi)).collect()
        }

        /// Any shifted convex quadratic in up to 4 dimensions is
        /// minimized to its known optimum.
        #[test]
        fn converges_on_random_quadratics() {
            check::cases("converges_on_random_quadratics", 48, |rng| {
                let d = rng.gen_range(1..=4);
                let center = coords(rng, d, -5.0, 5.0);
                let scales = coords(rng, d, 0.1, 10.0);
                let start = coords(rng, d, -5.0, 5.0);
                let nm = NelderMead::new(NelderMeadConfig {
                    max_evals: 20_000,
                    ..Default::default()
                });
                let r = nm.minimize(
                    |x| {
                        x.iter()
                            .zip(&center)
                            .zip(&scales)
                            .map(|((xi, c), s)| s * (xi - c) * (xi - c))
                            .sum()
                    },
                    &start,
                );
                for (xi, c) in r.point.iter().zip(&center) {
                    assert!((xi - c).abs() < 1e-2, "found {xi}, optimum {c}");
                }
                assert!(r.value < 1e-3, "value {}", r.value);
            });
        }

        /// The returned value always matches the objective at the
        /// returned point, and never exceeds the starting value.
        #[test]
        fn result_is_consistent_and_no_worse() {
            check::cases("result_is_consistent_and_no_worse", 48, |rng| {
                let d = rng.gen_range(1..=3);
                let start = coords(rng, d, -10.0, 10.0);
                let f = |x: &[f64]| x.iter().map(|v| v.abs().sqrt() + v * v).sum::<f64>();
                let nm = NelderMead::default();
                let r = nm.minimize(f, &start);
                assert!((r.value - f(&r.point)).abs() < 1e-12);
                assert!(r.value <= f(&start) + 1e-12);
            });
        }
    }

    #[test]
    fn higher_dimension_sphere() {
        let nm = NelderMead::new(NelderMeadConfig { max_evals: 50_000, ..Default::default() });
        let x0: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let r = nm.minimize(sphere, &x0);
        assert!(r.value < 1e-6, "value {}", r.value);
    }
}
