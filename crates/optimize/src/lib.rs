#![warn(missing_docs)]

//! Derivative-free optimization substrate for the CluDistream reproduction.
//!
//! The paper refines merged Gaussian components by minimizing an L1
//! accuracy-loss functional whose derivatives are unknown, using the
//! downhill-simplex method of Nelder and Mead (reference \[19\] of the paper).
//! This crate implements that method with the standard
//! reflection/expansion/contraction/shrink moves and a configurable
//! termination rule.
//!
//! # Example
//!
//! ```
//! use cludistream_optimize::{NelderMead, NelderMeadConfig};
//!
//! // Minimize the 2-d sphere function.
//! let nm = NelderMead::new(NelderMeadConfig::default());
//! let result = nm.minimize(|x| x.iter().map(|v| v * v).sum(), &[1.0, -2.0]);
//! assert!(result.value < 1e-8);
//! ```

mod nelder_mead;

pub use nelder_mead::{NelderMead, NelderMeadConfig, OptimizeResult};
