#![warn(missing_docs)]

//! Deterministic scoped-thread parallelism utilities.
//!
//! Two fan-out shapes cover everything the workspace parallelizes:
//!
//! - [`par_map`] — one scoped thread per input, output in input order.
//!   Used by the experiment harness's parameter sweeps (one independent
//!   simulation per parameter value).
//! - [`par_block_map`] — a fixed number of *block indices* sharded over a
//!   bounded worker pool as contiguous ranges, with per-worker scratch
//!   state. This is the shape of the EM engine's data-parallel E-step:
//!   the block size (and therefore each block's result) is independent of
//!   the worker count, and results are returned in block order, so any
//!   block-ordered reduction over them is bit-identical for every worker
//!   count — including 1, which runs inline on the caller without
//!   spawning.
//!
//! The crate is dependency-free and rng-free: nothing here may perturb
//! the workspace's deterministic simulations. Worker panics are
//! propagated to the caller with their original payload via
//! [`std::panic::resume_unwind`], so a failing assertion inside a worker
//! reads the same as it would sequentially.

use std::panic::resume_unwind;

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism" (1 when it cannot be queried), any other value
/// is taken as-is.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every input on its own scoped thread, preserving input
/// order in the output. `f` must be `Sync` (it is shared across threads).
///
/// A panic inside any worker is re-raised on the caller with the
/// worker's original panic payload.
pub fn par_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        // Spawn in input order, join in the same order: the handle list
        // itself is the ordering.
        let workers: Vec<_> = inputs
            .into_iter()
            .map(|input| scope.spawn(move || f(input)))
            .collect();
        workers
            .into_iter()
            .map(|w| match w.join() {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    })
}

/// Evaluates `f(scratch, block)` for every block index in `0..blocks`,
/// returning the results in block order.
///
/// Blocks are sharded over at most `workers` scoped threads as contiguous
/// index ranges (worker 0 gets the first range, worker 1 the next, …).
/// Each worker owns one scratch value produced by `init`, threaded
/// mutably through its blocks — reusable buffers never cross threads.
///
/// Determinism contract: the partition affects only *where* a block runs,
/// never its index or its result, and the output order is always block
/// order. A caller that reduces the returned vector front-to-back
/// therefore computes a bit-identical result for every `workers` value.
/// With `workers <= 1` (or a single block) everything runs inline on the
/// calling thread — no spawn, no `Send` round-trip cost.
///
/// A panic inside any worker is re-raised on the caller with the
/// worker's original panic payload.
pub fn par_block_map<S, R, I, F>(blocks: usize, workers: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if blocks == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, blocks);
    if workers == 1 {
        let mut scratch = init();
        return (0..blocks).map(|b| f(&mut scratch, b)).collect();
    }
    // Contiguous, near-even ranges: the first `blocks % workers` workers
    // take one extra block.
    let base = blocks / workers;
    let extra = blocks % workers;
    std::thread::scope(|scope| {
        let (init, f) = (&init, &f);
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let range = start..start + len;
            start += len;
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                range.map(|b| f(&mut scratch, b)).collect::<Vec<R>>()
            }));
        }
        let mut out = Vec::with_capacity(blocks);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(vec![3u64, 1, 4, 1, 5], |x| x * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_heavier_work_still_ordered() {
        let out = par_map((0..16u64).collect(), |x| {
            // Unequal work per item.
            let mut acc = 0u64;
            for i in 0..(x * 10_000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn par_map_propagates_worker_panic_payload() {
        let _ = par_map(vec![1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn block_map_matches_sequential_for_any_worker_count() {
        let sequential: Vec<u64> = (0..37u64).map(|b| b * b + 7).collect();
        for workers in [1usize, 2, 3, 4, 8, 64] {
            let out = par_block_map(37, workers, || (), |_, b| (b as u64) * (b as u64) + 7);
            assert_eq!(out, sequential, "workers={workers}");
        }
    }

    #[test]
    fn block_map_zero_blocks_is_empty() {
        let out: Vec<u8> = par_block_map(0, 4, || (), |_: &mut (), _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn block_map_creates_one_scratch_per_worker() {
        let created = AtomicUsize::new(0);
        let out = par_block_map(
            16,
            4,
            || {
                created.fetch_add(1, Ordering::SeqCst);
                0u64
            },
            |scratch, b| {
                // The scratch is genuinely threaded through each worker's
                // blocks.
                *scratch += 1;
                (*scratch, b)
            },
        );
        assert_eq!(created.load(Ordering::SeqCst), 4);
        // 4 workers x 4 blocks each: per-worker counters restart at 1.
        let restarts = out.iter().filter(|(c, _)| *c == 1).count();
        assert_eq!(restarts, 4);
        // Block indices still in order.
        for (i, (_, b)) in out.iter().enumerate() {
            assert_eq!(*b, i);
        }
    }

    #[test]
    fn block_map_inline_when_single_worker() {
        // With workers=1 the closure runs on the calling thread — observable
        // through a !Send-friendly pattern: thread id equality.
        let caller = std::thread::current().id();
        let out = par_block_map(5, 1, || (), |_, b| (std::thread::current().id(), b));
        for (id, _) in &out {
            assert_eq!(*id, caller);
        }
    }

    #[test]
    #[should_panic(expected = "block 3 exploded")]
    fn block_map_propagates_worker_panic_payload() {
        let _ = par_block_map(8, 4, || (), |_, b| {
            if b == 3 {
                panic!("block {b} exploded");
            }
            b
        });
    }

    #[test]
    fn resolve_workers_contract() {
        assert_eq!(resolve_workers(1), 1);
        assert_eq!(resolve_workers(7), 7);
        assert!(resolve_workers(0) >= 1);
    }
}
