//! `cludistream` binary entry point; all logic lives in the library so it
//! is unit-testable.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cludistream_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", cludistream_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match cludistream_cli::run(command, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
