#![warn(missing_docs)]

//! Command-line interface to the CluDistream reproduction.
//!
//! Three subcommands over CSV data (numeric records, one per row, optional
//! header):
//!
//! - `cluster` — batch EM over a whole file, with optional BIC selection
//!   of the component count; prints the mixture and per-record soft
//!   memberships.
//! - `stream` — replay the file through a CluDistream remote site: the
//!   test-and-cluster narration, the final model list, and the event
//!   table.
//! - `generate` — write a synthetic evolving-GMM stream to CSV (for
//!   demos and round-trip testing).
//! - `metrics` — run a small deterministic distributed workload with the
//!   telemetry layer attached and print the metrics table; `--journal`
//!   additionally writes the structured event journal as JSONL.
//! - `trace` — run the same workload with causal tracing on and print the
//!   critical-path latency profile; `--out` writes a Chrome trace-event
//!   (Perfetto-loadable) JSON file, byte-identical across runs.
//! - `coordinator` / `site` — the process-per-site socket runtime: the
//!   `metrics` workload over real loopback TCP, one process per role.
//!   See `docs/OPERATIONS.md` for the operator's manual.
//! - `aggregator` — the intermediate fan-in tier for large fleets: serves
//!   a contiguous range of sites (or child aggregators) exactly like the
//!   coordinator, pre-merges their synopses, and forwards one reduced
//!   update per flush interval to its parent, so the root's ingress is
//!   O(aggregators) instead of O(sites).
//! - `status` — scrape a running coordinator's fleet registry over the
//!   same TCP listener and print it in Prometheus text exposition;
//!   `--watch SECS` re-scrapes on an interval.
//! - `health` — ask a coordinator started with `--alerts` to evaluate
//!   its model-health alert rules; prints the verdict table and exits
//!   non-zero while any alert fires.
//! - `score` — batched Definition-1 assignment of a CSV file against a
//!   published model snapshot, read from a file (`--model`, e.g.
//!   `coordinator --snapshot-out`) or pulled from a live coordinator
//!   (`--connect`).
//!
//! Every data-reading subcommand (`cluster`, `stream`, `score`) accepts
//! the same `--input/--dim/--covariance` trio, parsed once by
//! [`parse_data_opts`]. The argument parser is deliberately
//! dependency-free; see [`parse_args`].

use cludistream::coordinator::MergeRefiner;
use cludistream::runtime::{
    run_aggregator, run_site, serve, AggregatorRun, Control, CoordinatorRun, HealthAlert, SiteRun,
    SocketConfig,
};
use cludistream::score_snapshot;
use cludistream::{
    ChunkOutcome, Config, CoordinatorConfig, DeliveryConfig, DeliveryMode, DriverConfig,
    FaultPlan, LinkFaults, ModelSnapshot, NodeId, RecordStream, RemoteSite, SimnetTransport,
    Simulation, SnapshotHandle,
};
use cludistream_datagen::csvio;
use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig};
use cludistream_gmm::{
    fit_em, fit_em_bic, Batch, ChunkParams, CovarianceType, EmConfig, Gaussian, Mixture,
};
use cludistream_linalg::Vector;
use cludistream_obs::{
    analyze, perfetto_json, AlertSet, FleetAggregator, Obs, QualityConfig, Registry,
};
use cludistream_rng::StdRng;
use cludistream_wire::framing::{write_frame, FrameReader};
use cludistream_wire::ByteReader;
use std::io::Write;
use std::sync::Arc;

/// The `--input/--dim/--covariance` trio every data-reading subcommand
/// (`cluster`, `stream`, `score`) accepts, parsed once by
/// [`parse_data_opts`].
#[derive(Debug, Clone, PartialEq)]
pub struct DataOpts {
    /// Input CSV path — `--input PATH` or the first positional argument;
    /// `-` reads stdin.
    pub input: String,
    /// Expected record dimension (`--dim D`); when set, the parsed
    /// records are validated against it instead of silently inferring.
    pub dim: Option<usize>,
    /// Covariance structure (`--covariance full|diagonal`, default full).
    pub covariance: CovarianceType,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Batch EM over a CSV file.
    Cluster {
        /// Input data selection (`--input/--dim/--covariance`).
        data: DataOpts,
        /// Fixed component count, or None with `k_range` set.
        k: usize,
        /// BIC range when `--auto-k lo..hi` was passed.
        k_range: Option<(usize, usize)>,
        /// RNG seed.
        seed: u64,
        /// Print per-record memberships.
        memberships: bool,
        /// E-step worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
    },
    /// Stream a CSV file through a remote site.
    Stream {
        /// Input data selection (`--input/--dim/--covariance`).
        data: DataOpts,
        /// Components per model.
        k: usize,
        /// Error bound ε.
        epsilon: f64,
        /// Probability bound δ.
        delta: f64,
        /// Multi-test depth.
        c_max: usize,
        /// RNG seed.
        seed: u64,
        /// E-step worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
    },
    /// Generate a synthetic evolving stream as CSV.
    Generate {
        /// Records to emit.
        records: usize,
        /// Dimensionality.
        dim: usize,
        /// Clusters per regime.
        k: usize,
        /// Regime-change probability per 2000 records.
        p_new: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Run an instrumented deterministic workload and print telemetry.
    Metrics {
        /// Remote sites in the star.
        sites: usize,
        /// Chunks per regime per site (each site sees two regimes).
        chunks: usize,
        /// RNG seed for data generation and EM.
        seed: u64,
        /// Error bound ε (drives the chunk size).
        epsilon: f64,
        /// E-step worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
        /// Write the JSONL event journal here.
        journal: Option<String>,
        /// Use the reliable delivery protocol even without faults (what
        /// the socket runtime always does; lets `metrics` journals be
        /// diffed against socket-runtime journals).
        reliable: bool,
    },
    /// Run the metrics workload over a lossy network with one site
    /// crash/restart, exercising the reliable delivery protocol.
    Faults {
        /// Remote sites in the star.
        sites: usize,
        /// Chunks per regime per site (each site sees two regimes).
        chunks: usize,
        /// RNG seed for data generation, EM, and fault injection.
        seed: u64,
        /// Error bound ε (drives the chunk size).
        epsilon: f64,
        /// Per-message drop probability on every link.
        drop: f64,
        /// Per-message duplication probability.
        duplicate: f64,
        /// Per-message reorder probability.
        reorder: f64,
        /// E-step worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
        /// Write the JSONL event journal here.
        journal: Option<String>,
    },
    /// Run the metrics workload with causal tracing enabled and print the
    /// critical-path latency profile; optionally export a Perfetto trace.
    Trace {
        /// Remote sites in the star.
        sites: usize,
        /// Chunks per regime per site (each site sees two regimes).
        chunks: usize,
        /// RNG seed for data generation, EM, and fault injection.
        seed: u64,
        /// Error bound ε (drives the chunk size).
        epsilon: f64,
        /// Attach the `faults` command's lossy network and site-0 outage.
        faults: bool,
        /// E-step worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
        /// Write Chrome trace-event (Perfetto) JSON here.
        out: Option<String>,
    },
    /// Serve the socket coordinator for one round of the `metrics`
    /// workload over real TCP.
    Coordinator {
        /// Address to listen on (`HOST:PORT`; port 0 picks one).
        listen: String,
        /// Sites that must rendezvous before the round starts.
        sites: usize,
        /// Heartbeat interval pushed to the sites, milliseconds.
        heartbeat_ms: u64,
        /// Silence after which a site is evicted, milliseconds.
        timeout_ms: u64,
        /// Abort the round after this many seconds (0 = never); a CI
        /// safety net against wedged rounds.
        deadline_s: u64,
        /// Write the bound address (`HOST:PORT`) here once listening, so
        /// scripts can discover an ephemeral port.
        port_file: Option<String>,
        /// Write the JSONL event journal here.
        journal: Option<String>,
        /// Write the fleet's Chrome trace-event (Perfetto) JSON here:
        /// coordinator spans plus every telemetry-reporting site's spans,
        /// rebased onto the coordinator clock.
        trace_out: Option<String>,
        /// Write the end-of-round model snapshot (the coordinator's
        /// checkpoint, in the serving wire layout) here.
        snapshot_out: Option<String>,
        /// Evaluate the default model-health alert rules on every
        /// `health` scrape (the quality plane's alerting side).
        alerts: bool,
        /// Keep the listener answering bare-connection control frames
        /// (status, snapshot, health) this long after the round finishes,
        /// milliseconds (0 = exit immediately).
        linger_ms: u64,
        /// Emit coordinator-side model-quality gauges (weight entropy and
        /// extrema of the global mixture, merge/split churn EWMA).
        quality: bool,
    },
    /// Run one socket site of the `metrics` workload against a
    /// coordinator.
    Site {
        /// Coordinator address to connect to (`HOST:PORT`).
        connect: String,
        /// This site's index in `0..sites`.
        site: usize,
        /// Chunks per regime (mirrors `metrics --chunks`).
        chunks: usize,
        /// RNG seed (mirrors `metrics --seed`).
        seed: u64,
        /// Error bound ε (mirrors `metrics --epsilon`).
        epsilon: f64,
        /// E-step worker threads (0 = all cores).
        threads: usize,
        /// Write the JSONL event journal here.
        journal: Option<String>,
        /// Record spans locally and ship them to the coordinator over the
        /// telemetry plane. Changes data-plane frame bytes (trace context
        /// rides the data frames), so byte accounting is only comparable
        /// across runs that agree on this flag.
        trace: bool,
        /// Turn on the site's streaming quality plane: per-chunk model
        /// quality gauges plus the Page-Hinkley and EWMA drift detectors
        /// over the held-out average log-likelihood.
        quality: bool,
    },
    /// Run an intermediate fan-in aggregator between a contiguous range
    /// of sites (or child aggregators) and a parent coordinator (or
    /// aggregator): downward it speaks the coordinator's protocol,
    /// upward it plays one site forwarding pre-merged reduced updates.
    Aggregator {
        /// Parent address to connect to (`HOST:PORT`).
        connect: String,
        /// Address to listen on for children (`HOST:PORT`; port 0 picks
        /// one).
        listen: String,
        /// The site index this node presents to its parent.
        site: usize,
        /// First global site index of the child range.
        child_base: usize,
        /// Children that must rendezvous before the subtree starts.
        children: usize,
        /// Suppression threshold: an upward flush is skipped while the
        /// reduced summary moved less than this (0 = forward every
        /// change). Distinct from the sites' chunk ε.
        epsilon: f64,
        /// Minimum milliseconds between upward flushes.
        flush_ms: u64,
        /// Heartbeat interval pushed to the children, milliseconds.
        heartbeat_ms: u64,
        /// Silence after which a child is evicted, milliseconds.
        timeout_ms: u64,
        /// Abort the round after this many seconds (0 = never).
        deadline_s: u64,
        /// Write the bound address (`HOST:PORT`) here once listening, so
        /// scripts can discover an ephemeral port.
        port_file: Option<String>,
        /// Write the JSONL event journal here.
        journal: Option<String>,
    },
    /// Score a CSV file against a published model snapshot: batched
    /// Definition-1 assignment (hard label, responsibilities,
    /// log-likelihood) using the SoA density kernels.
    Score {
        /// Input data selection (`--input/--dim/--covariance`).
        data: DataOpts,
        /// Read the snapshot from this file (`ModelSnapshot` wire bytes,
        /// e.g. `coordinator --snapshot-out`).
        model: Option<String>,
        /// Pull the latest snapshot from a live coordinator at
        /// `HOST:PORT` over a `SnapshotRequest` control frame.
        connect: Option<String>,
        /// Scoring worker threads (0 = all cores). Results are
        /// bit-identical for every value.
        threads: usize,
        /// Print per-record responsibilities alongside the hard label.
        responsibilities: bool,
    },
    /// Scrape a running coordinator's fleet metrics over TCP and print
    /// them in Prometheus text exposition format.
    Status {
        /// Coordinator address to scrape (`HOST:PORT`).
        connect: String,
        /// Re-scrape every this many seconds (0 = scrape once and exit).
        watch: u64,
    },
    /// Ask a running coordinator (started with `--alerts`) to evaluate
    /// its model-health alert rules and print the verdicts. Exits
    /// non-zero while any alert fires, so scripts and probes can gate on
    /// it directly.
    Health {
        /// Coordinator address to query (`HOST:PORT`).
        connect: String,
    },
    /// Print usage.
    Help,
}

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// CSV parse failure.
    Csv(csvio::CsvError),
    /// Algorithm failure.
    Gmm(cludistream_gmm::GmmError),
    /// I/O failure.
    Io(std::io::Error),
    /// `health` found this many alert rules firing. Carried as an error
    /// so the process exits non-zero — the rule table has already been
    /// printed to stdout by then.
    AlertsFiring(usize),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Csv(e) => write!(f, "{e}"),
            CliError::Gmm(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::AlertsFiring(n) => {
                write!(f, "health: {n} alert{} firing", if *n == 1 { "" } else { "s" })
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<csvio::CsvError> for CliError {
    fn from(e: csvio::CsvError) -> Self {
        CliError::Csv(e)
    }
}
impl From<cludistream_gmm::GmmError> for CliError {
    fn from(e: cludistream_gmm::GmmError) -> Self {
        CliError::Gmm(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
cludistream — EM-based (distributed) data stream clustering

USAGE:
  cludistream cluster  <csv|-> [--dim D] [--covariance full|diagonal] [--k N]
                       [--auto-k LO..HI] [--seed S] [--memberships] [--threads T]
  cludistream stream   <csv|-> [--dim D] [--covariance full|diagonal] [--k N]
                       [--epsilon E] [--delta D] [--c-max C] [--seed S] [--threads T]
  cludistream score    <csv|-> (--model SNAP.bin | --connect HOST:PORT) [--dim D]
                       [--covariance full|diagonal] [--threads T] [--responsibilities]
  cludistream generate [--records N] [--dim D] [--k K] [--p-new P] [--seed S]
  cludistream metrics  [--sites R] [--chunks C] [--seed S] [--epsilon E] [--journal OUT.jsonl]
                       [--threads T] [--reliable]
  cludistream faults   [--sites R] [--chunks C] [--seed S] [--epsilon E]
                       [--drop P] [--duplicate P] [--reorder P] [--journal OUT.jsonl]
                       [--threads T]
  cludistream trace    [--sites R] [--chunks C] [--seed S] [--epsilon E]
                       [--faults] [--out TRACE.json] [--threads T]
  cludistream coordinator [--listen HOST:PORT] [--sites R] [--heartbeat-ms H]
                       [--timeout-ms T] [--deadline-s D] [--port-file PATH]
                       [--journal OUT.jsonl] [--trace-out TRACE.json]
                       [--snapshot-out SNAP.bin] [--alerts] [--linger-ms L]
                       [--quality]
  cludistream site     --connect HOST:PORT [--site I] [--chunks C] [--seed S]
                       [--epsilon E] [--threads T] [--journal OUT.jsonl] [--trace]
                       [--quality]
  cludistream aggregator --connect HOST:PORT [--listen HOST:PORT] [--site I]
                       [--child-base B] [--children N] [--epsilon E] [--flush-ms F]
                       [--heartbeat-ms H] [--timeout-ms T] [--deadline-s D]
                       [--port-file PATH] [--journal OUT.jsonl]
  cludistream status   --connect HOST:PORT [--watch SECS]
  cludistream health   --connect HOST:PORT
  cludistream help

Defaults: k=5, epsilon=0.02, delta=0.01, c-max=4, seed=0, threads=1,
          covariance=full, records=10000, dim=4, p-new=0.1,
          metrics: sites=2, chunks=2, seed=7, epsilon=0.15,
          faults: metrics defaults + drop=0.1, duplicate=0.05, reorder=0.25,
          trace: metrics defaults,
          coordinator: listen=127.0.0.1:0, sites=2, heartbeat-ms=500,
                       timeout-ms=5000, deadline-s=0 (none), linger-ms=0,
          site: site=0, metrics workload defaults,
          aggregator: listen=127.0.0.1:0, site=0, child-base=0, children=2,
                      epsilon=0 (forward every change), flush-ms=50,
                      heartbeat-ms=500, timeout-ms=5000, deadline-s=0 (none),
          status: watch=0 (scrape once).

`coordinator` and `site` run the metrics workload distributed for real:
one coordinator process and one process per site, talking length-prefixed
frames over TCP (the same synopsis bytes the simulator accounts). The
coordinator waits for all R sites, broadcasts start, evicts sites silent
past --timeout-ms, and a site that reconnects resyncs via go-back-N.
See docs/OPERATIONS.md for the full operator's manual.

`aggregator` inserts a fan-in tier between the sites and the root: point
sites `B..B+N` at its listener (`--child-base B --children N`) and point
the aggregator's `--connect` at the root coordinator (or another
aggregator, for 3-level trees), started with `--sites` equal to the
number of *direct* children it serves. Downward it is indistinguishable
from a coordinator (rendezvous, heartbeats, eviction, go-back-N resync);
upward it forwards one pre-merged reduced update per `--flush-ms`
interval as site `--site I`, so the root's ingress and event table scale
with the number of aggregators, not sites. `status --connect` works
against an aggregator's listener too and reports its subtree.

Sites piggyback metric/span deltas on their heartbeats; the coordinator
folds them into a fleet registry that `status --connect` scrapes over the
same listener (Prometheus text exposition). `coordinator --trace-out`
writes one Perfetto JSON spanning every process, with remote spans
rebased onto the coordinator clock; site spans only exist under
`site --trace`.

The model-quality plane is opt-in end to end: `site --quality` streams
per-chunk quality gauges (held-out avg log-likelihood, test statistic,
weight entropy/extrema, re-cluster-rate EWMA, synopsis bytes/record) and
runs Page-Hinkley + EWMA drift detectors over the likelihood series;
`coordinator --quality` adds global-mixture weight gauges and the
merge/split churn EWMA; `coordinator --alerts` evaluates the default
alert rules on every `health --connect` probe, which prints the verdict
table and exits non-zero while any rule fires (probe-friendly).
`--linger-ms` keeps the listener answering status/snapshot/health
scrapes after the round ends.

`score` assigns every record of a CSV file to its most probable model
component (Definition 1) with the batched SoA density kernels: hard
label, per-component responsibilities (`--responsibilities`), and the
average log-likelihood. The snapshot comes from a file written by
`coordinator --snapshot-out` (`--model`) or is pulled live from a
running coordinator over a SnapshotRequest control frame (`--connect`).

`--threads T` parallelizes each EM fit's E-step over T scoped worker
threads (0 = all cores). Clustering output is bit-identical for every T;
only wall-clock time changes.

`faults` replays the metrics workload over a lossy network (crashing and
restarting site 0 mid-run) and prints the delivery accounting.

`trace` replays the metrics workload with causal tracing on (always over
the reliable protocol, so trace context rides the data frames), prints
the critical-path latency attribution, and with `--out` writes a
Perfetto-loadable Chrome trace-event JSON; `--faults` adds the `faults`
command's default fault plan so retransmit time shows up on the path.
";

/// Parses the shared `--input/--dim/--covariance` trio from a
/// subcommand's argument tail. The input may be `--input PATH` or the
/// first positional argument (`-` for stdin); `--dim` is optional and
/// validated against the parsed records when the input is read;
/// `--covariance` accepts `full` (default) or `diagonal`.
pub fn parse_data_opts(rest: &[&String]) -> Result<DataOpts, CliError> {
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let input = match flag("--input") {
        Some(path) => path.to_string(),
        None => rest
            .iter()
            .enumerate()
            .find(|(i, a)| {
                !a.starts_with("--") && (*i == 0 || !rest[i - 1].starts_with("--"))
            })
            .map(|(_, a)| a.to_string())
            .ok_or_else(|| {
                CliError::Usage("missing input file (use --input PATH or - for stdin)".into())
            })?,
    };
    let dim = match flag("--dim") {
        None => None,
        Some(v) => Some(v.parse::<usize>().map_err(|_| {
            CliError::Usage(format!("--dim expects an integer, got {v:?}"))
        })?),
    };
    if dim == Some(0) {
        return Err(CliError::Usage("--dim expects an integer >= 1".into()));
    }
    let covariance = match flag("--covariance") {
        None | Some("full") => CovarianceType::Full,
        Some("diagonal") => CovarianceType::Diagonal,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--covariance expects full or diagonal, got {other:?}"
            )))
        }
    };
    Ok(DataOpts { input, dim, covariance })
}

/// Parses a command line (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&String> = it.collect();
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let has = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let parse_num = |name: &str, default: f64| -> Result<f64, CliError> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("{name} expects a number, got {v:?}"))),
        }
    };
    let parse_int = |name: &str, default: usize| -> Result<usize, CliError> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("{name} expects an integer, got {v:?}"))),
        }
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "cluster" => {
            let k_range = match flag("--auto-k") {
                None => None,
                Some(spec) => {
                    let parts: Vec<&str> = spec.split("..").collect();
                    let parsed = (parts.len() == 2)
                        .then(|| {
                            Some((parts[0].parse::<usize>().ok()?, parts[1].parse::<usize>().ok()?))
                        })
                        .flatten();
                    match parsed {
                        Some((lo, hi)) if lo >= 1 && hi >= lo => Some((lo, hi)),
                        _ => {
                            return Err(CliError::Usage(format!(
                                "--auto-k expects LO..HI with 1 <= LO <= HI, got {spec:?}"
                            )))
                        }
                    }
                }
            };
            Ok(Command::Cluster {
                data: parse_data_opts(&rest)?,
                k: parse_int("--k", 5)?,
                k_range,
                seed: parse_int("--seed", 0)? as u64,
                memberships: has("--memberships"),
                threads: parse_int("--threads", 1)?,
            })
        }
        "stream" => Ok(Command::Stream {
            data: parse_data_opts(&rest)?,
            k: parse_int("--k", 5)?,
            epsilon: parse_num("--epsilon", 0.02)?,
            delta: parse_num("--delta", 0.01)?,
            c_max: parse_int("--c-max", 4)?,
            seed: parse_int("--seed", 0)? as u64,
            threads: parse_int("--threads", 1)?,
        }),
        "generate" => Ok(Command::Generate {
            records: parse_int("--records", 10_000)?,
            dim: parse_int("--dim", 4)?,
            k: parse_int("--k", 5)?,
            p_new: parse_num("--p-new", 0.1)?,
            seed: parse_int("--seed", 0)? as u64,
        }),
        "metrics" => Ok(Command::Metrics {
            sites: parse_int("--sites", 2)?.max(1),
            chunks: parse_int("--chunks", 2)?.max(1),
            seed: parse_int("--seed", 7)? as u64,
            epsilon: parse_num("--epsilon", 0.15)?,
            threads: parse_int("--threads", 1)?,
            journal: flag("--journal").map(|s| s.to_string()),
            reliable: has("--reliable"),
        }),
        "faults" => Ok(Command::Faults {
            sites: parse_int("--sites", 2)?.max(1),
            chunks: parse_int("--chunks", 2)?.max(1),
            seed: parse_int("--seed", 7)? as u64,
            epsilon: parse_num("--epsilon", 0.15)?,
            drop: parse_num("--drop", 0.1)?,
            duplicate: parse_num("--duplicate", 0.05)?,
            reorder: parse_num("--reorder", 0.25)?,
            threads: parse_int("--threads", 1)?,
            journal: flag("--journal").map(|s| s.to_string()),
        }),
        "trace" => Ok(Command::Trace {
            sites: parse_int("--sites", 2)?.max(1),
            chunks: parse_int("--chunks", 2)?.max(1),
            seed: parse_int("--seed", 7)? as u64,
            epsilon: parse_num("--epsilon", 0.15)?,
            faults: has("--faults"),
            threads: parse_int("--threads", 1)?,
            out: flag("--out").map(|s| s.to_string()),
        }),
        "coordinator" => Ok(Command::Coordinator {
            listen: flag("--listen").unwrap_or("127.0.0.1:0").to_string(),
            sites: parse_int("--sites", 2)?.max(1),
            heartbeat_ms: parse_int("--heartbeat-ms", 500)?.max(1) as u64,
            timeout_ms: parse_int("--timeout-ms", 5_000)?.max(1) as u64,
            deadline_s: parse_int("--deadline-s", 0)? as u64,
            port_file: flag("--port-file").map(|s| s.to_string()),
            journal: flag("--journal").map(|s| s.to_string()),
            trace_out: flag("--trace-out").map(|s| s.to_string()),
            snapshot_out: flag("--snapshot-out").map(|s| s.to_string()),
            alerts: has("--alerts"),
            linger_ms: parse_int("--linger-ms", 0)? as u64,
            quality: has("--quality"),
        }),
        "score" => {
            let model = flag("--model").map(|s| s.to_string());
            let connect = flag("--connect").map(|s| s.to_string());
            if model.is_some() == connect.is_some() {
                return Err(CliError::Usage(
                    "score requires exactly one of --model PATH or --connect HOST:PORT".into(),
                ));
            }
            Ok(Command::Score {
                data: parse_data_opts(&rest)?,
                model,
                connect,
                threads: parse_int("--threads", 1)?,
                responsibilities: has("--responsibilities"),
            })
        }
        "site" => Ok(Command::Site {
            connect: flag("--connect")
                .ok_or_else(|| CliError::Usage("site requires --connect HOST:PORT".into()))?
                .to_string(),
            site: parse_int("--site", 0)?,
            chunks: parse_int("--chunks", 2)?.max(1),
            seed: parse_int("--seed", 7)? as u64,
            epsilon: parse_num("--epsilon", 0.15)?,
            threads: parse_int("--threads", 1)?,
            journal: flag("--journal").map(|s| s.to_string()),
            trace: has("--trace"),
            quality: has("--quality"),
        }),
        "aggregator" => Ok(Command::Aggregator {
            connect: flag("--connect")
                .ok_or_else(|| CliError::Usage("aggregator requires --connect HOST:PORT".into()))?
                .to_string(),
            listen: flag("--listen").unwrap_or("127.0.0.1:0").to_string(),
            site: parse_int("--site", 0)?,
            child_base: parse_int("--child-base", 0)?,
            children: parse_int("--children", 2)?.max(1),
            epsilon: parse_num("--epsilon", 0.0)?,
            flush_ms: parse_int("--flush-ms", 50)?.max(1) as u64,
            heartbeat_ms: parse_int("--heartbeat-ms", 500)?.max(1) as u64,
            timeout_ms: parse_int("--timeout-ms", 5_000)?.max(1) as u64,
            deadline_s: parse_int("--deadline-s", 0)? as u64,
            port_file: flag("--port-file").map(|s| s.to_string()),
            journal: flag("--journal").map(|s| s.to_string()),
        }),
        "health" => Ok(Command::Health {
            connect: flag("--connect")
                .ok_or_else(|| CliError::Usage("health requires --connect HOST:PORT".into()))?
                .to_string(),
        }),
        "status" => Ok(Command::Status {
            connect: flag("--connect")
                .ok_or_else(|| CliError::Usage("status requires --connect HOST:PORT".into()))?
                .to_string(),
            watch: parse_int("--watch", 0)? as u64,
        }),
        other => Err(CliError::Usage(format!("unknown command {other:?}; try help"))),
    }
}

/// Connects to a coordinator, sends one `StatusRequest` control frame,
/// and returns the Prometheus text exposition from the `StatusReply`.
///
/// Works on a bare connection — no `Hello` handshake — so a scrape never
/// counts as a site joining or rejoining the round.
fn scrape_status(addr: &str) -> std::io::Result<String> {
    use std::io::{Error, ErrorKind};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    write_frame(&mut stream, Control::StatusRequest.encode().as_slice())?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let polled = reader.poll(&mut stream)?;
        for payload in polled.frames {
            let control = Control::decode(&mut ByteReader::new(&payload))
                .map_err(|e| Error::new(ErrorKind::InvalidData, format!("status: {e}")))?;
            if let Control::StatusReply { text } = control {
                return String::from_utf8(text)
                    .map_err(|_| Error::new(ErrorKind::InvalidData, "status reply is not UTF-8"));
            }
        }
        if polled.eof {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "coordinator closed the connection before replying",
            ));
        }
        if std::time::Instant::now() >= deadline {
            return Err(Error::new(ErrorKind::TimedOut, "no status reply within 5s"));
        }
    }
}

/// Connects to a coordinator, sends one `SnapshotRequest` control frame,
/// and returns the `ModelSnapshot` wire bytes from the `SnapshotReply`.
///
/// Like [`scrape_status`], works on a bare connection — no `Hello`
/// handshake — so pulling a snapshot never counts as a site joining. An
/// empty reply means the coordinator has not published (or captured) a
/// model yet; the caller decides whether to retry.
fn scrape_snapshot(addr: &str) -> std::io::Result<Vec<u8>> {
    use std::io::{Error, ErrorKind};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    write_frame(&mut stream, Control::SnapshotRequest.encode().as_slice())?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let polled = reader.poll(&mut stream)?;
        for payload in polled.frames {
            let control = Control::decode(&mut ByteReader::new(&payload))
                .map_err(|e| Error::new(ErrorKind::InvalidData, format!("snapshot: {e}")))?;
            if let Control::SnapshotReply { snapshot } = control {
                return Ok(snapshot);
            }
        }
        if polled.eof {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "coordinator closed the connection before replying",
            ));
        }
        if std::time::Instant::now() >= deadline {
            return Err(Error::new(ErrorKind::TimedOut, "no snapshot reply within 5s"));
        }
    }
}

/// Connects to a coordinator, sends one `HealthRequest` control frame,
/// and returns the alert verdicts from the `HealthReply`.
///
/// Like [`scrape_status`], works on a bare connection — no `Hello`
/// handshake — so a health probe never counts as a site joining the
/// round. An empty verdict list means the coordinator was started
/// without `--alerts` (no rules to evaluate).
fn scrape_health(addr: &str) -> std::io::Result<Vec<HealthAlert>> {
    use std::io::{Error, ErrorKind};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    write_frame(&mut stream, Control::HealthRequest.encode().as_slice())?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let polled = reader.poll(&mut stream)?;
        for payload in polled.frames {
            let control = Control::decode(&mut ByteReader::new(&payload))
                .map_err(|e| Error::new(ErrorKind::InvalidData, format!("health: {e}")))?;
            if let Control::HealthReply { alerts } = control {
                return Ok(alerts);
            }
        }
        if polled.eof {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "coordinator closed the connection before replying",
            ));
        }
        if std::time::Instant::now() >= deadline {
            return Err(Error::new(ErrorKind::TimedOut, "no health reply within 5s"));
        }
    }
}

/// The deterministic two-regime stream behind `cludistream metrics`:
/// `per_regime` records of two blobs at ±3 (shifted slightly per site),
/// then `per_regime` records of the same shape moved to 40 ± 3.
fn metrics_stream(site: usize, seed: u64, per_regime: usize) -> RecordStream {
    let regime = |center: f64| -> Mixture {
        let offset = 0.3 * site as f64;
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[center - 3.0 + offset]), 0.5)
                    .expect("valid gaussian"),
                Gaussian::spherical(Vector::from_slice(&[center + 3.0 + offset]), 0.5)
                    .expect("valid gaussian"),
            ],
            vec![0.5, 0.5],
        )
        .expect("valid mixture")
    };
    let a = regime(0.0);
    let b = regime(40.0);
    let mut rng = StdRng::seed_from_u64(seed ^ (site as u64).wrapping_mul(0x9E37_79B9));
    let mut emitted = 0usize;
    Box::new(std::iter::from_fn(move || {
        let m = if emitted < per_regime { &a } else { &b };
        emitted += 1;
        Some(m.sample(&mut rng))
    }))
}

fn read_input(path: &str) -> Result<Vec<Vector>, CliError> {
    let records = if path == "-" {
        csvio::read_records(std::io::stdin().lock())?
    } else {
        let file = std::fs::File::open(path)?;
        csvio::read_records(std::io::BufReader::new(file))?
    };
    if records.is_empty() {
        return Err(CliError::Usage(format!("{path}: no records")));
    }
    Ok(records)
}

/// Reads the records a [`DataOpts`] selects and validates `--dim`
/// against what was actually parsed.
fn read_data(opts: &DataOpts) -> Result<Vec<Vector>, CliError> {
    let records = read_input(&opts.input)?;
    if let Some(dim) = opts.dim {
        if records[0].dim() != dim {
            return Err(CliError::Usage(format!(
                "{}: --dim {dim} but records have dimension {}",
                opts.input,
                records[0].dim()
            )));
        }
    }
    Ok(records)
}

/// Executes a command, writing human-readable output to `out`.
pub fn run(command: Command, out: &mut impl Write) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Cluster { data: opts, k, k_range, seed, memberships, threads } => {
            let data = read_data(&opts)?;
            let config =
                EmConfig { k, seed, threads, covariance: opts.covariance, ..Default::default() };
            let (mixture, chosen_k, bic) = match k_range {
                None => {
                    let fit = fit_em(&data, &config)?;
                    (fit.mixture, k, None)
                }
                Some((lo, hi)) => {
                    let (best, _) = fit_em_bic(&data, lo..=hi, &config)?;
                    (best.fit.mixture, best.k, Some(best.bic))
                }
            };
            writeln!(out, "records: {}", data.len())?;
            writeln!(out, "components: {chosen_k}{}", match bic {
                Some(b) => format!(" (BIC {b:.1})"),
                None => String::new(),
            })?;
            writeln!(out, "avg log likelihood: {:.4}", mixture.avg_log_likelihood(&data))?;
            for (j, (c, w)) in mixture.components().iter().zip(mixture.weights()).enumerate() {
                writeln!(out, "  component {j}: weight {w:.4}, mean {}", c.mean())?;
            }
            if memberships {
                writeln!(out, "memberships (record index: probabilities):")?;
                for (i, x) in data.iter().enumerate() {
                    let p: Vec<String> =
                        mixture.posteriors(x).iter().map(|v| format!("{v:.3}")).collect();
                    writeln!(out, "  {i}: [{}]", p.join(", "))?;
                }
            }
            Ok(())
        }
        Command::Stream { data: opts, k, epsilon, delta, c_max, seed, threads } => {
            let data = read_data(&opts)?;
            let dim = data[0].dim();
            let config = Config {
                dim,
                k,
                chunk: ChunkParams { epsilon, delta },
                c_max,
                seed,
                em_threads: threads,
                covariance: opts.covariance,
                ..Default::default()
            };
            let mut site = RemoteSite::new(config)?;
            writeln!(out, "chunk size M = {} records (Theorem 1)", site.chunk_size())?;
            for x in data {
                if let Some(outcome) = site.push(x)? {
                    let chunk = site.chunk_index() - 1;
                    match outcome {
                        ChunkOutcome::FitCurrent { j_fit } => {
                            writeln!(out, "chunk {chunk}: fits current (J_fit {j_fit:.4})")?
                        }
                        ChunkOutcome::SwitchedTo { model, tests, .. } => writeln!(
                            out,
                            "chunk {chunk}: re-fit model {model} after {tests} tests"
                        )?,
                        ChunkOutcome::NewModel { model, .. } => {
                            writeln!(out, "chunk {chunk}: NEW model {model}")?
                        }
                    }
                }
            }
            let s = site.stats();
            writeln!(out, "---")?;
            writeln!(
                out,
                "records {} | chunks {} | fit {} | re-fit {} | clustered {}",
                s.records, s.chunks, s.fit_current, s.switched, s.clustered
            )?;
            writeln!(out, "models: {}", site.models().len())?;
            for e in site.events().entries_at(site.chunk_index().saturating_sub(1)) {
                writeln!(
                    out,
                    "  chunks {:>4}..={:<4} -> model {}",
                    e.start_chunk, e.end_chunk, e.model
                )?;
            }
            Ok(())
        }
        Command::Metrics { sites, chunks, seed, epsilon, threads, journal, reliable } => {
            let registry = match &journal {
                Some(path) => {
                    let file = std::fs::File::create(path)?;
                    Arc::new(Registry::with_journal(Box::new(std::io::BufWriter::new(file))))
                }
                None => Arc::new(Registry::new()),
            };
            // Exact quantiles alongside the histogram's power-of-two
            // bounds, for the deterministic EM-cost distributions.
            registry.track_quantiles("em.iters_per_fit");
            registry.track_quantiles("em.cost_us");
            let obs = Obs::from_registry(Arc::clone(&registry));

            // A two-regime workload engineered so every event type fires:
            // each site streams `chunks` chunks from regime A (blobs at
            // ±3), then `chunks` chunks from regime B (blobs at 40 ± 3) —
            // re-clustering on the change — and the per-regime component
            // pairs give the coordinator more groups than `max_groups`,
            // forcing merges with simplex refinement.
            let site_config = Config {
                dim: 1,
                k: 2,
                chunk: ChunkParams { epsilon, delta: 0.01 },
                c_max: 4,
                seed,
                em_threads: threads,
                ..Default::default()
            };
            let chunk_size = RemoteSite::new(site_config.clone())?.chunk_size();
            let per_regime = chunks * chunk_size;
            let streams: Vec<RecordStream> = (0..sites)
                .map(|i| metrics_stream(i, seed, per_regime))
                .collect();
            let driver_config = DriverConfig {
                site: site_config,
                coordinator: CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    ..Default::default()
                },
                obs,
                ..Default::default()
            };
            let mut sim = Simulation::star(sites)
                .with_driver_config(driver_config)
                .with_streams(streams)
                .with_updates_per_site(2 * per_regime as u64);
            if reliable {
                sim = sim.with_reliability(DeliveryConfig {
                    mode: DeliveryMode::Reliable,
                    ..Default::default()
                });
            }
            let report = sim.run().map_err(|e| CliError::Usage(format!("driver: {e}")))?;
            registry.flush_journal()?;

            writeln!(out, "sites: {sites} | chunk size M = {chunk_size} records")?;
            writeln!(
                out,
                "sim seconds: {:.3} | total bytes on the wire: {}",
                report.sim_seconds,
                report.comm.total_bytes()
            )?;
            writeln!(out, "coordinator groups: {}", report.coordinator_groups)?;
            writeln!(out)?;
            write!(out, "{}", registry.render_table())?;
            if let Some(path) = journal {
                writeln!(out, "journal written to {path}")?;
            }
            Ok(())
        }
        Command::Faults {
            sites,
            chunks,
            seed,
            epsilon,
            drop,
            duplicate,
            reorder,
            threads,
            journal,
        } => {
            let registry = match &journal {
                Some(path) => {
                    let file = std::fs::File::create(path)?;
                    Arc::new(Registry::with_journal(Box::new(std::io::BufWriter::new(file))))
                }
                None => Arc::new(Registry::new()),
            };
            registry.track_quantiles("em.iters_per_fit");
            registry.track_quantiles("em.cost_us");
            let obs = Obs::from_registry(Arc::clone(&registry));

            // The metrics two-regime workload, over a hostile network.
            let site_config = Config {
                dim: 1,
                k: 2,
                chunk: ChunkParams { epsilon, delta: 0.01 },
                c_max: 4,
                seed,
                em_threads: threads,
                ..Default::default()
            };
            let chunk_size = RemoteSite::new(site_config.clone())?.chunk_size();
            let per_regime = chunks * chunk_size;
            let updates = 2 * per_regime as u64;
            let streams: Vec<RecordStream> =
                (0..sites).map(|i| metrics_stream(i, seed, per_regime)).collect();
            let driver_config = DriverConfig {
                site: site_config,
                coordinator: CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    ..Default::default()
                },
                obs,
                ..Default::default()
            };
            // Site 0 crashes at 40% of the nominal run and comes back at
            // 55%, recovering from its last checkpoint. The nominal
            // duration follows from the default driver rate (1000 rec/s).
            let duration_us = updates.saturating_mul(1_000_000) / driver_config.records_per_second;
            let plan = FaultPlan::seeded(seed)
                .with_link(LinkFaults {
                    drop_p: drop,
                    duplicate_p: duplicate,
                    reorder_p: reorder,
                    reorder_max_delay_us: 5_000,
                })
                .with_outage(NodeId(0), duration_us * 2 / 5, duration_us * 11 / 20);
            let report = Simulation::star(sites)
                .with_driver_config(driver_config)
                .with_transport(Box::new(SimnetTransport::new().with_faults(plan)))
                .with_streams(streams)
                .with_updates_per_site(updates)
                .run()
                .map_err(|e| CliError::Usage(format!("driver: {e}")))?;
            registry.flush_journal()?;

            writeln!(out, "sites: {sites} | chunk size M = {chunk_size} records")?;
            writeln!(
                out,
                "faults: drop={drop} duplicate={duplicate} reorder={reorder} | site 0 \
                 down {:.3}s..{:.3}s",
                (duration_us * 2 / 5) as f64 / 1e6,
                (duration_us * 11 / 20) as f64 / 1e6,
            )?;
            writeln!(
                out,
                "sim seconds: {:.3} | total bytes on the wire: {}",
                report.sim_seconds,
                report.comm.total_bytes()
            )?;
            writeln!(out, "coordinator groups: {}", report.coordinator_groups)?;
            let d = &report.delivery;
            writeln!(out)?;
            writeln!(out, "delivery (reliable = {}):", d.reliable)?;
            writeln!(
                out,
                "  sent         : {:>6} msgs {:>8} bytes",
                d.sent_messages, d.sent_bytes
            )?;
            writeln!(
                out,
                "  delivered    : {:>6} msgs {:>8} bytes",
                d.delivered_messages, d.delivered_bytes
            )?;
            writeln!(
                out,
                "  dropped      : {:>6} msgs {:>8} bytes",
                d.dropped_messages, d.dropped_bytes
            )?;
            writeln!(
                out,
                "  duplicated   : {:>6} msgs {:>8} bytes",
                d.duplicated_messages, d.duplicated_bytes
            )?;
            writeln!(
                out,
                "  retransmitted: {:>6} msgs {:>8} bytes",
                d.retransmitted_messages, d.retransmitted_bytes
            )?;
            writeln!(out, "  acks         : {:>6} msgs {:>8} bytes", d.ack_messages, d.ack_bytes)?;
            writeln!(
                out,
                "  reordered {} | stale/dup discarded {} | crashes {} | restarts {}",
                d.reordered_messages, d.duplicates_discarded, d.crashes, d.restarts
            )?;
            writeln!(
                out,
                "  conservation : sent + duplicated == delivered + dropped ({})",
                if d.balanced() { "balanced" } else { "VIOLATED" }
            )?;
            writeln!(out)?;
            write!(out, "{}", registry.render_table())?;
            if let Some(path) = journal {
                writeln!(out, "journal written to {path}")?;
            }
            Ok(())
        }
        Command::Trace { sites, chunks, seed, epsilon, faults, threads, out: trace_out } => {
            let registry = Arc::new(Registry::new());
            registry.enable_tracing();
            let obs = Obs::from_registry(Arc::clone(&registry));

            // The metrics two-regime workload, traced end to end.
            let site_config = Config {
                dim: 1,
                k: 2,
                chunk: ChunkParams { epsilon, delta: 0.01 },
                c_max: 4,
                seed,
                em_threads: threads,
                ..Default::default()
            };
            let chunk_size = RemoteSite::new(site_config.clone())?.chunk_size();
            let per_regime = chunks * chunk_size;
            let updates = 2 * per_regime as u64;
            let streams: Vec<RecordStream> =
                (0..sites).map(|i| metrics_stream(i, seed, per_regime)).collect();
            let driver_config = DriverConfig {
                site: site_config,
                coordinator: CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    ..Default::default()
                },
                obs,
                ..Default::default()
            };
            let duration_us = updates.saturating_mul(1_000_000) / driver_config.records_per_second;
            // Trace context rides the sequenced data frames, so delivery
            // is always reliable here — even fault-free.
            let mut sim = Simulation::star(sites)
                .with_driver_config(driver_config)
                .with_reliability(DeliveryConfig {
                    mode: DeliveryMode::Reliable,
                    ..Default::default()
                })
                .with_streams(streams)
                .with_updates_per_site(updates);
            if faults {
                sim = sim.with_transport(Box::new(
                    SimnetTransport::new().with_faults(
                        FaultPlan::seeded(seed)
                            .with_link(LinkFaults {
                                drop_p: 0.1,
                                duplicate_p: 0.05,
                                reorder_p: 0.25,
                                reorder_max_delay_us: 5_000,
                            })
                            .with_outage(NodeId(0), duration_us * 2 / 5, duration_us * 11 / 20),
                    ),
                ));
            }
            let report = sim.run().map_err(|e| CliError::Usage(format!("driver: {e}")))?;

            let spans = registry.spans();
            let breakdown = analyze(&spans);
            writeln!(out, "sites: {sites} | chunk size M = {chunk_size} records")?;
            writeln!(
                out,
                "faults: {} | spans recorded: {} | retransmitted frames: {}",
                if faults { "on" } else { "off" },
                spans.len(),
                report.delivery.retransmitted_messages
            )?;
            writeln!(out)?;
            write!(out, "{}", breakdown.render())?;
            if let Some(path) = trace_out {
                std::fs::write(&path, perfetto_json(&spans))?;
                writeln!(out, "perfetto trace written to {path}")?;
            }
            Ok(())
        }
        Command::Coordinator {
            listen,
            sites,
            heartbeat_ms,
            timeout_ms,
            deadline_s,
            port_file,
            journal,
            trace_out,
            snapshot_out,
            alerts,
            linger_ms,
            quality,
        } => {
            let registry = match &journal {
                Some(path) => {
                    let file = std::fs::File::create(path)?;
                    Arc::new(Registry::with_journal(Box::new(std::io::BufWriter::new(file))))
                }
                None => Arc::new(Registry::new()),
            };
            if trace_out.is_some() {
                registry.enable_tracing();
            }
            let obs = Obs::from_registry(Arc::clone(&registry));
            // The fleet registry folds every site's telemetry deltas; the
            // `status` subcommand scrapes it mid-round over the same
            // listener.
            let fleet = Arc::new(FleetAggregator::new());
            let listener = std::net::TcpListener::bind(&listen)
                .map_err(|e| CliError::Usage(format!("coordinator: bind {listen}: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| CliError::Usage(format!("coordinator: {e}")))?;
            writeln!(out, "coordinator listening on {addr} for {sites} sites")?;
            out.flush()?;
            // Ephemeral-port discovery for scripts: write-then-rename so a
            // poller never reads a half-written file.
            if let Some(path) = &port_file {
                let tmp = format!("{path}.tmp");
                std::fs::write(&tmp, addr.to_string())?;
                std::fs::rename(&tmp, path)?;
            }
            // A CLI coordinator always publishes read-side snapshots:
            // `score --connect` can pull the live model mid-round, and
            // the end-of-round checkpoint lands in `--snapshot-out`.
            let mut builder = CoordinatorRun::builder(sites)
                // The metrics-workload coordinator configuration, so a
                // socket round is diffable against `metrics --reliable`.
                .coordinator(CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    quality,
                    ..Default::default()
                })
                .dim(1)
                .obs(obs)
                .socket(SocketConfig {
                    heartbeat_us: heartbeat_ms.saturating_mul(1_000),
                    timeout_us: timeout_ms.saturating_mul(1_000),
                    deadline: (deadline_s > 0)
                        .then(|| std::time::Duration::from_secs(deadline_s)),
                    linger: (linger_ms > 0)
                        .then(|| std::time::Duration::from_millis(linger_ms)),
                    ..Default::default()
                })
                .fleet(Arc::clone(&fleet))
                .snapshots(Arc::new(SnapshotHandle::new()));
            if alerts {
                builder = builder.alerts(AlertSet::default_rules());
            }
            let run =
                builder.build().map_err(|e| CliError::Usage(format!("coordinator: {e}")))?;
            let report =
                serve(listener, run).map_err(|e| CliError::Usage(format!("coordinator: {e}")))?;
            registry.flush_journal()?;

            writeln!(out, "coordinator groups: {}", report.groups)?;
            writeln!(
                out,
                "data bytes received: {} | acks: {} msgs {} bytes | dup/stale discarded: {}",
                report.comm.total_bytes(),
                report.ack_messages,
                report.ack_bytes,
                report.duplicates_discarded
            )?;
            writeln!(
                out,
                "resyncs served: {} | evicted sites: {:?} | ctrl sent: {} msgs {} bytes",
                report.resyncs,
                report.evicted,
                registry.counter_value("net.ctrl_messages"),
                registry.counter_value("net.ctrl_bytes")
            )?;
            if let Some(path) = journal {
                writeln!(out, "journal written to {path}")?;
            }
            if let Some(path) = trace_out {
                // One timeline across processes: the coordinator's own
                // spans plus every site's, already rebased onto the
                // coordinator clock by the fleet aggregator.
                let mut spans = registry.spans();
                spans.extend(fleet.spans());
                std::fs::write(&path, perfetto_json(&spans))?;
                writeln!(out, "perfetto trace written to {path}")?;
            }
            if let Some(path) = snapshot_out {
                // The end-of-round checkpoint, in the same wire layout
                // `score --model` and `score --connect` consume.
                match &report.snapshot {
                    Some(snapshot) => {
                        std::fs::write(&path, snapshot.encode().into_vec())?;
                        writeln!(
                            out,
                            "model snapshot (version {}) written to {path}",
                            snapshot.version
                        )?;
                    }
                    None => {
                        writeln!(out, "no model snapshot to write (round produced no model)")?
                    }
                }
            }
            Ok(())
        }
        Command::Site { connect, site, chunks, seed, epsilon, threads, journal, trace, quality } => {
            let registry = match &journal {
                Some(path) => {
                    let file = std::fs::File::create(path)?;
                    Arc::new(Registry::with_journal(Box::new(std::io::BufWriter::new(file))))
                }
                None => Arc::new(Registry::new()),
            };
            registry.track_quantiles("em.iters_per_fit");
            registry.track_quantiles("em.cost_us");
            registry.track_quantiles("hb.rtt_us");
            // A CLI site always reports telemetry — its registry is its
            // own, so there is nothing to double-count — and keeps a
            // flight-recorder ring for crash forensics. Span recording
            // stays opt-in because trace context changes data-plane
            // frame bytes.
            registry.enable_telemetry();
            registry.enable_flight_recorder(64);
            if trace {
                registry.enable_tracing();
            }
            let obs = Obs::from_registry(Arc::clone(&registry));

            // The metrics two-regime workload for one site; the per-site
            // seed decorrelation happens inside `run_site`, exactly as the
            // simulator's driver does it.
            let site_config = Config {
                dim: 1,
                k: 2,
                chunk: ChunkParams { epsilon, delta: 0.01 },
                c_max: 4,
                seed,
                em_threads: threads,
                quality: quality.then(QualityConfig::default),
                ..Default::default()
            };
            let chunk_size = RemoteSite::new(site_config.clone())?.chunk_size();
            let per_regime = chunks * chunk_size;
            let updates = 2 * per_regime as u64;
            let run = SiteRun::builder(site, metrics_stream(site, seed, per_regime))
                .config(DriverConfig { site: site_config, obs, ..Default::default() })
                .updates(updates)
                .telemetry(true)
                .build()
                .map_err(|e| CliError::Usage(format!("site: {e}")))?;
            let report =
                run_site(&connect, run).map_err(|e| CliError::Usage(format!("site: {e}")))?;
            registry.flush_journal()?;

            writeln!(out, "site {site}: chunk size M = {chunk_size} records")?;
            writeln!(
                out,
                "records {} | chunks {} | clustered {} | models {}",
                report.stats.records, report.stats.chunks, report.stats.clustered, report.models
            )?;
            writeln!(
                out,
                "sent: {} msgs {} bytes | retransmitted: {} msgs {} bytes | resyncs: {}",
                report.sent_messages,
                report.sent_bytes,
                report.retransmitted_messages,
                report.retransmitted_bytes,
                report.resyncs
            )?;
            if let Some(path) = journal {
                writeln!(out, "journal written to {path}")?;
            }
            Ok(())
        }
        Command::Aggregator {
            connect,
            listen,
            site,
            child_base,
            children,
            epsilon,
            flush_ms,
            heartbeat_ms,
            timeout_ms,
            deadline_s,
            port_file,
            journal,
        } => {
            let registry = match &journal {
                Some(path) => {
                    let file = std::fs::File::create(path)?;
                    Arc::new(Registry::with_journal(Box::new(std::io::BufWriter::new(file))))
                }
                None => Arc::new(Registry::new()),
            };
            registry.track_quantiles("hb.rtt_us");
            // Like a CLI site, an aggregator always reports telemetry
            // upward, so the root's fleet registry shows the subtree
            // under this node's `site<I>.` prefix.
            registry.enable_telemetry();
            let obs = Obs::from_registry(Arc::clone(&registry));
            // The subtree's own fleet registry: `status --connect` against
            // this listener scrapes the children this node serves.
            let fleet = Arc::new(FleetAggregator::new());
            let listener = std::net::TcpListener::bind(&listen)
                .map_err(|e| CliError::Usage(format!("aggregator: bind {listen}: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| CliError::Usage(format!("aggregator: {e}")))?;
            writeln!(
                out,
                "aggregator {site} listening on {addr} for sites {child_base}..{}",
                child_base + children
            )?;
            out.flush()?;
            if let Some(path) = &port_file {
                let tmp = format!("{path}.tmp");
                std::fs::write(&tmp, addr.to_string())?;
                std::fs::rename(&tmp, path)?;
            }
            let run = AggregatorRun::builder(site as u32, child_base as u32, children)
                // The shard runs the metrics-workload coordinator
                // configuration with the bounded merge log: the fan-in
                // boundary is where history is retained, so the cap is
                // what keeps a deep tree's memory O(models) per node.
                .coordinator(CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    merge_log_cap: Some(64),
                    ..Default::default()
                })
                .dim(1)
                .epsilon(epsilon)
                .flush_interval_us(flush_ms.saturating_mul(1_000))
                .obs(obs)
                .telemetry(true)
                .fleet(Arc::clone(&fleet))
                .socket(SocketConfig {
                    heartbeat_us: heartbeat_ms.saturating_mul(1_000),
                    timeout_us: timeout_ms.saturating_mul(1_000),
                    deadline: (deadline_s > 0)
                        .then(|| std::time::Duration::from_secs(deadline_s)),
                    ..Default::default()
                })
                .build()
                .map_err(|e| CliError::Usage(format!("aggregator: {e}")))?;
            let report = run_aggregator(&connect, listener, run)
                .map_err(|e| CliError::Usage(format!("aggregator: {e}")))?;
            registry.flush_journal()?;

            writeln!(out, "aggregator groups: {}", report.groups)?;
            writeln!(
                out,
                "child messages folded: {} | event-table rows held here: {}",
                report.messages_applied, report.event_table_entries
            )?;
            writeln!(
                out,
                "flushes up: {} ({} suppressed) | up: {} msgs {} bytes | retransmitted: {} msgs {} bytes",
                report.flushes,
                report.flushes_suppressed,
                report.sent_messages,
                report.sent_bytes,
                report.retransmitted_messages,
                report.retransmitted_bytes
            )?;
            writeln!(
                out,
                "down: acks {} msgs {} bytes | dup/stale discarded: {} | decode errors: {}",
                report.ack_messages, report.ack_bytes, report.duplicates_discarded,
                report.decode_errors
            )?;
            writeln!(
                out,
                "resyncs: up {} down {} | evicted sites: {:?}",
                report.resyncs_up, report.resyncs_down, report.evicted
            )?;
            if let Some(path) = journal {
                writeln!(out, "journal written to {path}")?;
            }
            Ok(())
        }
        Command::Score { data: opts, model, connect, threads, responsibilities } => {
            let bytes = match (&model, &connect) {
                (Some(path), _) => std::fs::read(path)?,
                (None, Some(addr)) => {
                    // An empty reply means the coordinator is up but has
                    // not learned a model yet — poll until it has one.
                    let deadline =
                        std::time::Instant::now() + std::time::Duration::from_secs(10);
                    loop {
                        let bytes = scrape_snapshot(addr)
                            .map_err(|e| CliError::Usage(format!("score: {addr}: {e}")))?;
                        if !bytes.is_empty() {
                            break bytes;
                        }
                        if std::time::Instant::now() >= deadline {
                            return Err(CliError::Usage(format!(
                                "score: {addr}: no snapshot published within 10s"
                            )));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(200));
                    }
                }
                (None, None) => {
                    return Err(CliError::Usage(
                        "score requires --model PATH or --connect HOST:PORT".into(),
                    ))
                }
            };
            let snapshot = ModelSnapshot::decode(&mut ByteReader::new(&bytes))
                .map_err(|e| CliError::Usage(format!("score: invalid snapshot: {e}")))?;
            let records = read_data(&opts)?;
            let dim = records[0].dim();
            if dim != snapshot.mixture.dim() {
                return Err(CliError::Usage(format!(
                    "score: records have dimension {dim} but the model is {}-dimensional",
                    snapshot.mixture.dim()
                )));
            }
            let batch = Batch::from_records(&records);
            // Instrumented score path: the same `serve.score_us`
            // observations a long-lived scorer would feed its quantile
            // tracker from.
            let registry = Arc::new(Registry::new());
            registry.track_quantiles("serve.score_us");
            let score_obs = Obs::from_registry(Arc::clone(&registry));
            let scores = score_snapshot(&snapshot, &batch, threads, &score_obs)?;
            writeln!(
                out,
                "snapshot: version {} | messages applied {} | groups {}",
                snapshot.version,
                snapshot.messages_applied,
                snapshot.groups.len()
            )?;
            writeln!(
                out,
                "model: {} components, dim {}, {:?} covariance",
                snapshot.mixture.k(),
                snapshot.mixture.dim(),
                snapshot.covariance
            )?;
            writeln!(out, "records: {}", records.len())?;
            for i in 0..scores.len() {
                write!(
                    out,
                    "  {i}: component {} (log p {:.4})",
                    scores.labels()[i],
                    scores.log_pdf()[i]
                )?;
                if responsibilities {
                    let p: Vec<String> = scores
                        .responsibilities(i)
                        .iter()
                        .map(|v| format!("{v:.3}"))
                        .collect();
                    write!(out, " [{}]", p.join(", "))?;
                }
                writeln!(out)?;
            }
            writeln!(out, "avg log likelihood: {:.4}", scores.avg_log_likelihood())?;
            if let Some(us) = registry.exact_quantile("serve.score_us", 0.5) {
                writeln!(out, "score latency: {us} us for {} records", records.len())?;
            }
            Ok(())
        }
        Command::Health { connect } => {
            let alerts = scrape_health(&connect)
                .map_err(|e| CliError::Usage(format!("health: {connect}: {e}")))?;
            if alerts.is_empty() {
                writeln!(out, "no alert rules configured (start the coordinator with --alerts)")?;
                return Ok(());
            }
            let firing = alerts.iter().filter(|a| a.firing).count();
            for a in &alerts {
                writeln!(
                    out,
                    "{} {:<18} {} = {} (threshold {})",
                    if a.firing { "FIRING" } else { "ok    " },
                    a.name,
                    a.metric,
                    a.value,
                    a.threshold
                )?;
            }
            writeln!(out, "{firing}/{} alerts firing", alerts.len())?;
            if firing > 0 {
                return Err(CliError::AlertsFiring(firing));
            }
            Ok(())
        }
        Command::Status { connect, watch } => {
            loop {
                let text = scrape_status(&connect)
                    .map_err(|e| CliError::Usage(format!("status: {connect}: {e}")))?;
                out.write_all(text.as_bytes())?;
                out.flush()?;
                if watch == 0 {
                    break;
                }
                writeln!(out)?;
                std::thread::sleep(std::time::Duration::from_secs(watch));
            }
            Ok(())
        }
        Command::Generate { records, dim, k, p_new, seed } => {
            let mut stream = EvolvingStream::new(EvolvingStreamConfig {
                dim,
                k,
                p_new,
                seed,
                ..Default::default()
            });
            let data = stream.take_chunk(records);
            csvio::write_records(out, &data, None)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn opts(input: &str) -> DataOpts {
        DataOpts { input: input.into(), dim: None, covariance: CovarianceType::Full }
    }

    #[test]
    fn parses_cluster_command() {
        let c = parse_args(&args("cluster data.csv --k 3 --seed 7 --memberships")).unwrap();
        assert_eq!(
            c,
            Command::Cluster {
                data: opts("data.csv"),
                k: 3,
                k_range: None,
                seed: 7,
                memberships: true,
                threads: 1
            }
        );
    }

    #[test]
    fn parses_auto_k_range() {
        let c = parse_args(&args("cluster - --auto-k 2..6")).unwrap();
        match c {
            Command::Cluster { k_range, data, .. } => {
                assert_eq!(k_range, Some((2, 6)));
                assert_eq!(data.input, "-");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("cluster - --auto-k 6..2")).is_err());
        assert!(parse_args(&args("cluster - --auto-k nope")).is_err());
    }

    #[test]
    fn parses_stream_defaults() {
        let c = parse_args(&args("stream in.csv")).unwrap();
        assert_eq!(
            c,
            Command::Stream {
                data: opts("in.csv"),
                k: 5,
                epsilon: 0.02,
                delta: 0.01,
                c_max: 4,
                seed: 0,
                threads: 1
            }
        );
    }

    #[test]
    fn parses_shared_data_opts() {
        // The trio is shared: every data-reading subcommand accepts it.
        for cmd in ["cluster", "stream", "score --model m.bin"] {
            match parse_args(&args(&format!(
                "{cmd} --input d.csv --dim 3 --covariance diagonal"
            )))
            .unwrap()
            {
                Command::Cluster { data, .. }
                | Command::Stream { data, .. }
                | Command::Score { data, .. } => {
                    assert_eq!(
                        data,
                        DataOpts {
                            input: "d.csv".into(),
                            dim: Some(3),
                            covariance: CovarianceType::Diagonal
                        },
                        "{cmd}"
                    );
                }
                other => panic!("{other:?}"),
            }
        }
        // --input wins over a positional; bad values are rejected.
        match parse_args(&args("cluster pos.csv --input flag.csv")).unwrap() {
            Command::Cluster { data, .. } => assert_eq!(data.input, "flag.csv"),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("cluster d.csv --dim 0")).is_err());
        assert!(parse_args(&args("cluster d.csv --dim nope")).is_err());
        assert!(parse_args(&args("cluster d.csv --covariance banana")).is_err());
    }

    #[test]
    fn parses_score_command() {
        let c = parse_args(&args("score d.csv --model snap.bin --threads 2")).unwrap();
        assert_eq!(
            c,
            Command::Score {
                data: opts("d.csv"),
                model: Some("snap.bin".into()),
                connect: None,
                threads: 2,
                responsibilities: false
            }
        );
        match parse_args(&args("score d.csv --connect h:1 --responsibilities")).unwrap() {
            Command::Score { connect, responsibilities, .. } => {
                assert_eq!(connect.as_deref(), Some("h:1"));
                assert!(responsibilities);
            }
            other => panic!("{other:?}"),
        }
        // Exactly one snapshot source.
        assert!(parse_args(&args("score d.csv")).is_err());
        assert!(parse_args(&args("score d.csv --model m --connect h:1")).is_err());
    }

    #[test]
    fn parses_generate_and_help() {
        let c = parse_args(&args("generate --records 100 --dim 2 --p-new 0.5")).unwrap();
        assert_eq!(
            c,
            Command::Generate { records: 100, dim: 2, k: 5, p_new: 0.5, seed: 0 }
        );
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("cluster")).is_err(), "missing input");
        assert!(parse_args(&args("cluster data.csv --k nope")).is_err());
    }

    #[test]
    fn generate_then_cluster_roundtrip() {
        // Generate a small stream to a buffer, re-parse it, cluster it.
        let mut csv = Vec::new();
        run(
            Command::Generate { records: 300, dim: 2, k: 2, p_new: 0.0, seed: 1 },
            &mut csv,
        )
        .unwrap();
        let records = csvio::read_records(std::io::Cursor::new(&csv)).unwrap();
        assert_eq!(records.len(), 300);
        assert_eq!(records[0].dim(), 2);
        // Write to a temp file and run `cluster` on it.
        let path = std::env::temp_dir().join("cludistream_cli_test.csv");
        std::fs::write(&path, &csv).unwrap();
        let mut out = Vec::new();
        run(
            Command::Cluster {
                data: opts(&path.to_string_lossy()),
                k: 2,
                k_range: None,
                seed: 2,
                memberships: false,
                threads: 1,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("records: 300"), "{text}");
        assert!(text.contains("components: 2"));
        assert!(text.contains("avg log likelihood"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_command_runs_end_to_end() {
        // A generated stream with large epsilon → small chunks → visible
        // narration.
        let mut csv = Vec::new();
        run(
            Command::Generate { records: 500, dim: 1, k: 1, p_new: 0.0, seed: 3 },
            &mut csv,
        )
        .unwrap();
        let path = std::env::temp_dir().join("cludistream_cli_stream_test.csv");
        std::fs::write(&path, &csv).unwrap();
        let mut out = Vec::new();
        run(
            Command::Stream {
                data: opts(&path.to_string_lossy()),
                k: 1,
                epsilon: 0.2,
                delta: 0.05,
                c_max: 4,
                seed: 4,
                threads: 0,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("chunk size M ="), "{text}");
        assert!(text.contains("chunk 0: NEW model"), "{text}");
        // Tiny chunks are noisy; a stable stream still ends with very few
        // models.
        assert!(text.contains("models: 1") || text.contains("models: 2"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn score_command_scores_against_a_snapshot_file() {
        use cludistream::{ModelId, SnapshotGroup, SnapshotMember};
        // Two well-separated 1-d components; three records near them.
        let mixture = Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[10.0]), 1.0).unwrap(),
            ],
            vec![0.5, 0.5],
        )
        .unwrap();
        let snapshot = ModelSnapshot {
            version: 3,
            messages_applied: 12,
            covariance: CovarianceType::Full,
            mixture,
            groups: vec![
                SnapshotGroup {
                    id: 1,
                    weight: 0.5,
                    members: vec![SnapshotMember { site: 0, model: ModelId(0), component: 0 }],
                },
                SnapshotGroup { id: 2, weight: 0.5, members: Vec::new() },
            ],
        };
        let snap_path = std::env::temp_dir().join("cludistream_cli_score_snap.bin");
        std::fs::write(&snap_path, snapshot.encode().into_vec()).unwrap();
        let csv_path = std::env::temp_dir().join("cludistream_cli_score_data.csv");
        std::fs::write(&csv_path, "0.2\n9.7\n0.4\n").unwrap();

        let command = |dim: Option<usize>| Command::Score {
            data: DataOpts {
                input: csv_path.to_string_lossy().into_owned(),
                dim,
                covariance: CovarianceType::Full,
            },
            model: Some(snap_path.to_string_lossy().into_owned()),
            connect: None,
            threads: 2,
            responsibilities: true,
        };
        let mut out = Vec::new();
        run(command(Some(1)), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("snapshot: version 3 | messages applied 12 | groups 2"), "{text}");
        assert!(text.contains("0: component 0"), "{text}");
        assert!(text.contains("1: component 1"), "{text}");
        assert!(text.contains("2: component 0"), "{text}");
        assert!(text.contains("avg log likelihood"), "{text}");
        // --dim is validated against the parsed records.
        assert!(run(command(Some(2)), &mut Vec::new()).is_err());
        let _ = std::fs::remove_file(snap_path);
        let _ = std::fs::remove_file(csv_path);
    }

    #[test]
    fn parses_threads_flag() {
        match parse_args(&args("cluster data.csv --threads 4")).unwrap() {
            Command::Cluster { threads, .. } => assert_eq!(threads, 4),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("metrics --threads 0")).unwrap() {
            Command::Metrics { threads, .. } => assert_eq!(threads, 0),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("trace")).unwrap() {
            Command::Trace { threads, .. } => assert_eq!(threads, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("stream in.csv --threads nope")).is_err());
    }

    #[test]
    fn parses_status_command() {
        let c = parse_args(&args("status --connect 127.0.0.1:9000")).unwrap();
        assert_eq!(c, Command::Status { connect: "127.0.0.1:9000".into(), watch: 0 });
        match parse_args(&args("status --connect h:1 --watch 5")).unwrap() {
            Command::Status { watch, .. } => assert_eq!(watch, 5),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("status")).is_err(), "--connect is required");
    }

    #[test]
    fn parses_telemetry_flags() {
        match parse_args(&args("coordinator --trace-out fleet.json")).unwrap() {
            Command::Coordinator { trace_out, .. } => {
                assert_eq!(trace_out.as_deref(), Some("fleet.json"));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("site --connect h:1 --trace")).unwrap() {
            Command::Site { trace, .. } => assert!(trace),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("site --connect h:1")).unwrap() {
            Command::Site { trace, .. } => assert!(!trace, "span recording is opt-in"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_health_and_quality_flags() {
        let c = parse_args(&args("health --connect 127.0.0.1:9000")).unwrap();
        assert_eq!(c, Command::Health { connect: "127.0.0.1:9000".into() });
        assert!(parse_args(&args("health")).is_err(), "--connect is required");
        match parse_args(&args("coordinator --alerts --linger-ms 1500 --quality")).unwrap() {
            Command::Coordinator { alerts, linger_ms, quality, .. } => {
                assert!(alerts);
                assert_eq!(linger_ms, 1500);
                assert!(quality);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("coordinator")).unwrap() {
            Command::Coordinator { alerts, linger_ms, quality, .. } => {
                assert!(!alerts && !quality, "the quality plane is opt-in");
                assert_eq!(linger_ms, 0);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("site --connect h:1 --quality")).unwrap() {
            Command::Site { quality, .. } => assert!(quality),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("site --connect h:1")).unwrap() {
            Command::Site { quality, .. } => assert!(!quality, "the quality plane is opt-in"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_aggregator_command() {
        let c = parse_args(&args("aggregator --connect 127.0.0.1:9000")).unwrap();
        assert_eq!(
            c,
            Command::Aggregator {
                connect: "127.0.0.1:9000".into(),
                listen: "127.0.0.1:0".into(),
                site: 0,
                child_base: 0,
                children: 2,
                epsilon: 0.0,
                flush_ms: 50,
                heartbeat_ms: 500,
                timeout_ms: 5000,
                deadline_s: 0,
                port_file: None,
                journal: None,
            }
        );
        match parse_args(&args(
            "aggregator --connect h:1 --listen h:2 --site 8 --child-base 4 --children 4 \
             --epsilon 0.05 --flush-ms 20 --port-file p.txt --journal j.jsonl",
        ))
        .unwrap()
        {
            Command::Aggregator {
                site, child_base, children, epsilon, flush_ms, port_file, journal, ..
            } => {
                assert_eq!((site, child_base, children), (8, 4, 4));
                assert_eq!(epsilon, 0.05);
                assert_eq!(flush_ms, 20);
                assert_eq!(port_file.as_deref(), Some("p.txt"));
                assert_eq!(journal.as_deref(), Some("j.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("aggregator")).is_err(), "--connect is required");
    }

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        run(Command::Help, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    }
}
