//! In-process fleet telemetry round: one socket coordinator and three
//! `run_site` workers over loopback TCP, each site with its own registry
//! and telemetry reporting on.
//!
//! Verifies the ISSUE acceptance criteria for the telemetry plane:
//!
//! - mid-round, `cludistream status` (driven through the library `run`
//!   entry point) scrapes a Prometheus exposition that already shows
//!   per-site metric families — the round is held open by withholding
//!   site 2, so the scrape is deterministic, not a race;
//! - after the round, every counter and histogram in each site's local
//!   registry equals its `siteN.`-prefixed copy in the fleet registry,
//!   and the unprefixed fleet counter equals the sum across sites
//!   (control-plane counters excluded: frames sent after a site's final
//!   telemetry flush — `Done`, the last heartbeat — can never be
//!   reported);
//! - shipped spans are rebased onto the coordinator clock (they land
//!   inside the observed round window) and keep per-site node ids
//!   disjoint from the coordinator's own track, so one Perfetto export
//!   holds every process without overlapping tracks.

use cludistream::coordinator::MergeRefiner;
use cludistream::runtime::{run_site, serve, CoordinatorRun, SiteRun, SocketConfig};
use cludistream::{Config, CoordinatorConfig, DriverConfig, RecordStream, RemoteSite};
use cludistream_cli::{run, Command};
use cludistream_gmm::{ChunkParams, Gaussian, Mixture};
use cludistream_linalg::Vector;
use cludistream_obs::{perfetto_json, FleetAggregator, Obs, Registry};
use cludistream_rng::StdRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SITES: usize = 3;
const CHUNKS: usize = 2;
const SEED: u64 = 7;
const EPSILON: f64 = 0.15;

/// The `cludistream metrics` two-regime workload for one site (mirrors
/// the CLI's private stream builder: two blobs at ±3, shifted 0.3 per
/// site, jumping to 40 ± 3 halfway through).
fn two_regime_stream(site: usize, per_regime: usize) -> RecordStream {
    let regime = |center: f64| -> Mixture {
        let offset = 0.3 * site as f64;
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[center - 3.0 + offset]), 0.5)
                    .expect("valid gaussian"),
                Gaussian::spherical(Vector::from_slice(&[center + 3.0 + offset]), 0.5)
                    .expect("valid gaussian"),
            ],
            vec![0.5, 0.5],
        )
        .expect("valid mixture")
    };
    let a = regime(0.0);
    let b = regime(40.0);
    let mut rng = StdRng::seed_from_u64(SEED ^ (site as u64).wrapping_mul(0x9E37_79B9));
    let mut emitted = 0usize;
    Box::new(std::iter::from_fn(move || {
        let m = if emitted < per_regime { &a } else { &b };
        emitted += 1;
        Some(m.sample(&mut rng))
    }))
}

fn scrape(addr: &str) -> String {
    let mut buf = Vec::new();
    run(Command::Status { connect: addr.to_string(), watch: 0 }, &mut buf)
        .expect("status scrape");
    String::from_utf8(buf).expect("exposition is UTF-8")
}

#[test]
fn fleet_registry_matches_site_registries_and_rebases_spans() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let fleet = Arc::new(FleetAggregator::new());
    let coord_registry = Arc::new(Registry::new());
    coord_registry.enable_tracing();
    let coord_obs = Obs::from_registry(Arc::clone(&coord_registry));
    let serve_fleet = Arc::clone(&fleet);
    let round_start = Instant::now();
    let coordinator = std::thread::spawn(move || {
        serve(
            listener,
            CoordinatorRun::builder(SITES)
                .coordinator(CoordinatorConfig {
                    max_groups: 2,
                    refine_merges: true,
                    refiner: MergeRefiner { samples: 32, max_evals: 100, seed: 9 },
                    ..Default::default()
                })
                .dim(1)
                .obs(coord_obs)
                .socket(SocketConfig {
                    // Fast heartbeats → fast telemetry flushes, so the
                    // mid-round scrape below converges quickly.
                    heartbeat_us: 50_000,
                    deadline: Some(Duration::from_secs(120)),
                    ..Default::default()
                })
                .fleet(serve_fleet)
                .build()
                .expect("coordinator run"),
        )
        .expect("serve")
    });

    let site_config = Config {
        dim: 1,
        k: 2,
        chunk: ChunkParams { epsilon: EPSILON, delta: 0.01 },
        c_max: 4,
        seed: SEED,
        em_threads: 1,
        ..Default::default()
    };
    let chunk_size = RemoteSite::new(site_config.clone()).expect("site").chunk_size();
    let per_regime = CHUNKS * chunk_size;
    let updates = 2 * per_regime as u64;

    let launch = |site: usize| -> (Arc<Registry>, JoinHandle<()>) {
        let registry = Arc::new(Registry::new());
        registry.enable_telemetry();
        registry.enable_flight_recorder(64);
        registry.enable_tracing();
        registry.track_quantiles("hb.rtt_us");
        let obs = Obs::from_registry(Arc::clone(&registry));
        let config = site_config.clone();
        let connect = addr.clone();
        let handle = std::thread::spawn(move || {
            run_site(
                &connect,
                SiteRun::builder(site, two_regime_stream(site, per_regime))
                    .config(DriverConfig { site: config, obs, ..Default::default() })
                    .updates(updates)
                    .socket(SocketConfig { heartbeat_us: 50_000, ..Default::default() })
                    .telemetry(true)
                    .build()
                    .unwrap_or_else(|e| panic!("site {site}: {e}")),
            )
            .unwrap_or_else(|e| panic!("site {site}: {e}"));
        });
        (registry, handle)
    };

    // Sites 0 and 1 join and finish their streams, but the round cannot
    // end until site 2 (withheld) joins — so `status` observes a live
    // fleet mid-round, deterministically.
    let mut registries = Vec::new();
    let mut handles = Vec::new();
    for site in 0..SITES - 1 {
        let (registry, handle) = launch(site);
        registries.push(registry);
        handles.push(handle);
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    let mid_round = loop {
        let text = scrape(&addr);
        if text.contains("cludistream_net_messages_total{site=\"0\"}")
            && text.contains("cludistream_net_messages_total{site=\"1\"}")
        {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "site telemetry never reached the status exposition:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(mid_round.starts_with("# TYPE cludistream_up gauge\ncludistream_up 1\n"), "{mid_round}");
    assert!(
        mid_round.contains("cludistream_round_state{site=\"2\"} 0"),
        "withheld site must scrape as Waiting:\n{mid_round}"
    );

    let (registry, handle) = launch(SITES - 1);
    registries.push(registry);
    handles.push(handle);
    for handle in handles {
        handle.join().expect("site thread");
    }
    let report = coordinator.join().expect("coordinator thread");
    let round_us = round_start.elapsed().as_micros() as u64;
    assert!(report.groups >= 1, "round produced no groups");

    // Fleet-aggregation equivalence: each site's local registry must be
    // reproduced verbatim under its `siteN.` prefix, and the unprefixed
    // counters must be the cross-site sums. Control-plane traffic is the
    // one legitimate laggard — `Done` and the final heartbeat are sent
    // after the last telemetry flush, so their counts never ship.
    let fleet_registry = fleet.registry();
    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
    for (site, registry) in registries.iter().enumerate() {
        let counters = registry.counters();
        assert!(!counters.is_empty(), "site {site} recorded no counters");
        for (name, value) in counters {
            if name.starts_with("net.ctrl_") {
                continue;
            }
            assert_eq!(
                fleet_registry.counter_value(&format!("site{site}.{name}")),
                value,
                "site {site} counter {name} diverged in the fleet registry"
            );
            *sums.entry(name).or_insert(0) += value;
        }
        for (name, snap) in registry.histograms() {
            // RTT samples observed after the final flush stay local.
            if name == "hb.rtt_us" {
                continue;
            }
            let fleet_snap = fleet_registry
                .histogram_snapshot(&format!("site{site}.{name}"))
                .unwrap_or_else(|| panic!("fleet is missing site{site}.{name}"));
            assert_eq!(fleet_snap.count, snap.count, "site {site} histogram {name} count");
            assert_eq!(fleet_snap.sum, snap.sum, "site {site} histogram {name} sum");
        }
    }
    for (name, sum) in sums {
        assert_eq!(
            fleet_registry.counter_value(name),
            sum,
            "unprefixed fleet counter {name} is not the cross-site sum"
        );
    }

    // Clock rebase: every shipped span sits on the coordinator clock,
    // inside the observed round window, on its own per-site track.
    let fleet_spans = fleet.spans();
    assert!(!fleet_spans.is_empty(), "sites traced but no spans reached the fleet");
    let site_nodes: BTreeSet<u32> = fleet_spans.iter().map(|s| s.node).collect();
    assert!(
        site_nodes.iter().all(|&n| (n as usize) < SITES),
        "fleet spans must keep site node ids, got {site_nodes:?}"
    );
    assert!(site_nodes.len() >= 2, "expected spans from several sites, got {site_nodes:?}");
    for span in &fleet_spans {
        assert!(span.start_us <= span.end_us, "span {} runs backwards", span.name);
        assert!(
            span.end_us <= round_us + 2_000_000,
            "span {} ends at {} µs — past the {} µs round window, so it was not rebased",
            span.name,
            span.end_us,
            round_us
        );
    }
    let coord_spans = coord_registry.spans();
    assert!(
        coord_spans.iter().all(|s| s.node == SITES as u32),
        "coordinator spans must stay on the hub track (node {SITES})"
    );

    // One coherent multi-process export: coordinator + rebased site spans.
    let mut all = coord_spans;
    all.extend(fleet_spans.iter().copied());
    let json = perfetto_json(&all);
    assert!(json.starts_with("{\"traceEvents\":[\n"), "{json}");
    for node in 0..=SITES {
        assert!(json.contains(&format!("\"name\":\"node {node}\"")), "missing track {node}");
    }
}
