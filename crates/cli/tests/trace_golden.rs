//! Golden-file test for the `trace` Perfetto export.
//!
//! Span ids are allocated in simulator dispatch order and stamped with
//! sim-time, so the Chrome trace-event JSON of the default
//! `cludistream trace --faults` workload must be byte-identical across
//! runs and match the committed fixture at
//! `tests/fixtures/trace_faults.json`. `scripts/verify.sh` performs the
//! same diff against the release binary.

use cludistream_cli::{parse_args, run, Command};

fn default_trace(faults: bool, out: Option<&std::path::Path>) -> Command {
    Command::Trace {
        sites: 2,
        chunks: 2,
        seed: 7,
        epsilon: 0.15,
        faults,
        threads: 1,
        out: out.map(|p| p.to_string_lossy().into_owned()),
    }
}

fn run_trace(faults: bool, out: Option<&std::path::Path>) -> String {
    let mut table = Vec::new();
    run(default_trace(faults, out), &mut table).expect("trace run succeeds");
    String::from_utf8(table).expect("utf-8 output")
}

/// The `retransmit ... us` value from the critical-path table.
fn retransmit_us(table: &str) -> u64 {
    let line = table
        .lines()
        .find(|l| l.trim_start().starts_with("retransmit"))
        .expect("retransmit line present");
    let us = line.split_whitespace().nth(1).expect("value column");
    us.parse().expect("numeric microseconds")
}

#[test]
fn perfetto_export_is_deterministic_and_matches_fixture() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let a = dir.join(format!("cludistream_trace_{pid}_a.json"));
    let b = dir.join(format!("cludistream_trace_{pid}_b.json"));
    run_trace(true, Some(&a));
    run_trace(true, Some(&b));
    let first = std::fs::read_to_string(&a).expect("trace written");
    let second = std::fs::read_to_string(&b).expect("trace written");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);

    assert_eq!(first, second, "perfetto export not deterministic across runs");
    let fixture = include_str!("fixtures/trace_faults.json");
    assert_eq!(first, fixture, "export diverged from tests/fixtures/trace_faults.json");

    // The trace follows a chunk across the whole pipeline.
    for name in
        ["site.chunk", "site.em", "wire.synopsis", "wire.send", "coord.apply", "coord.simplex"]
    {
        assert!(first.contains(&format!("\"name\":\"{name}\"")), "no {name} span:\n{first}");
    }
}

#[test]
fn retransmit_share_is_zero_without_faults_and_positive_with() {
    let clean = run_trace(false, None);
    assert_eq!(retransmit_us(&clean), 0, "fault-free run retransmitted:\n{clean}");
    let faulty = run_trace(true, None);
    assert!(retransmit_us(&faulty) > 0, "faults produced no retransmit time:\n{faulty}");
    // Every attribution category is exercised by the faults workload.
    for cat in ["em", "simplex", "retransmit", "queueing"] {
        let line = faulty
            .lines()
            .find(|l| l.trim_start().starts_with(cat))
            .unwrap_or_else(|| panic!("no {cat} line:\n{faulty}"));
        let us: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(us > 0, "{cat} attribution is zero under faults:\n{faulty}");
    }
}

#[test]
fn trace_args_parse() {
    let args: Vec<String> = ["trace", "--sites", "3", "--faults", "--out", "x.json"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    match parse_args(&args).expect("valid args") {
        Command::Trace { sites, chunks, seed, epsilon, faults, out, .. } => {
            assert_eq!(sites, 3);
            assert_eq!(chunks, 2);
            assert_eq!(seed, 7);
            assert_eq!(epsilon, 0.15);
            assert!(faults);
            assert_eq!(out.as_deref(), Some("x.json"));
        }
        other => panic!("parsed {other:?}"),
    }
}
