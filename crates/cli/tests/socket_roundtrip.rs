//! Multi-process loopback round: one real `cludistream coordinator`
//! process and three real `cludistream site` processes talking TCP over
//! 127.0.0.1, then a byte-level diff of each site's journal against the
//! same workload run through the deterministic simulator.
//!
//! This is the ISSUE acceptance check in test form: the socket runtime
//! must reach the same merge/split decisions (`coordinator groups:`) and
//! emit the identical protocol event stream — chunk tests,
//! re-clusterings, synopsis byte counts — as `metrics --reliable`. Only
//! timestamps may differ (simulated vs. wall clock).

use cludistream_cli::{run, Command};
use std::io::Read;
use std::process::{Child, Command as Proc, Stdio};
use std::time::{Duration, Instant};

const SITES: usize = 3;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cludistream")
}

/// Polls the coordinator's `--port-file` until the address appears.
fn wait_for_port(path: &std::path::Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("coordinator exited before publishing its port: {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("coordinator never wrote {}", path.display());
}

fn read_all(mut child: Child, name: &str) -> String {
    let status = child.wait().unwrap_or_else(|e| panic!("{name}: wait: {e}"));
    let mut text = String::new();
    if let Some(mut out) = child.stdout.take() {
        out.read_to_string(&mut text).unwrap_or_else(|e| panic!("{name}: read: {e}"));
    }
    let mut err = String::new();
    if let Some(mut stderr) = child.stderr.take() {
        let _ = stderr.read_to_string(&mut err);
    }
    assert!(status.success(), "{name} failed ({status})\nstdout:\n{text}\nstderr:\n{err}");
    text
}

/// Protocol-determined journal lines for one site, timestamps stripped.
fn site_events(journal: &str, site: usize) -> Vec<String> {
    let needle = format!("\"site\":{site}");
    journal
        .lines()
        .filter(|l| {
            ["\"event\":\"ChunkTested\"", "\"event\":\"Reclustered\"", "\"event\":\"SynopsisSent\""]
                .iter()
                .any(|e| l.contains(e))
        })
        .filter(|l| l.contains(&needle))
        .map(|l| match (l.find("\"t\":"), l.find(',')) {
            (Some(start), Some(end)) if start < end => format!("{}{}", &l[..start], &l[end + 1..]),
            _ => l.to_string(),
        })
        .collect()
}

fn groups_line(text: &str) -> &str {
    text.lines()
        .find(|l| l.starts_with("coordinator groups:"))
        .unwrap_or_else(|| panic!("no group count in output:\n{text}"))
}

#[test]
fn three_site_loopback_round_matches_the_simulator() {
    let dir = std::env::temp_dir().join(format!("cludistream-socket-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let port_file = dir.join("port.txt");

    let mut coordinator = Proc::new(bin())
        .args(["coordinator", "--sites", "3", "--deadline-s", "120"])
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let addr = wait_for_port(&port_file, &mut coordinator);

    let site_procs: Vec<Child> = (0..SITES)
        .map(|i| {
            Proc::new(bin())
                .args(["site", "--connect", &addr, "--site", &i.to_string()])
                .arg("--journal")
                .arg(dir.join(format!("site{i}.jsonl")))
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn site {i}: {e}"))
        })
        .collect();

    for (i, child) in site_procs.into_iter().enumerate() {
        read_all(child, &format!("site {i}"));
    }
    let coord_out = read_all(coordinator, "coordinator");

    // The same workload through the simulator, in-process.
    let sim_journal = dir.join("sim.jsonl");
    let mut sim_out = Vec::new();
    run(
        Command::Metrics {
            sites: SITES,
            chunks: 2,
            seed: 7,
            epsilon: 0.15,
            threads: 1,
            journal: Some(sim_journal.to_string_lossy().into_owned()),
            reliable: true,
        },
        &mut sim_out,
    )
    .expect("simulator run succeeds");
    let sim_out = String::from_utf8(sim_out).expect("utf-8");

    // Identical merge/split decisions.
    assert_eq!(groups_line(&coord_out), groups_line(&sim_out), "group counts diverged");

    // Identical per-site protocol events (chunk outcomes, re-clustering
    // points, synopsis byte counts), modulo timestamps.
    let sim = std::fs::read_to_string(&sim_journal).expect("sim journal");
    for i in 0..SITES {
        let tcp = std::fs::read_to_string(dir.join(format!("site{i}.jsonl")))
            .unwrap_or_else(|e| panic!("site {i} journal: {e}"));
        let sim_events = site_events(&sim, i);
        let tcp_events = site_events(&tcp, i);
        assert!(!sim_events.is_empty(), "site {i}: simulator emitted no events");
        assert_eq!(tcp_events, sim_events, "site {i}: event streams diverged");
    }

    std::fs::remove_dir_all(&dir).ok();
}
