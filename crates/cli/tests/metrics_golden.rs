//! Golden-file test for the `metrics` event journal.
//!
//! The journal of the default `cludistream metrics` workload must be
//! byte-identical across runs (events are stamped with deterministic
//! sim-time, never wall-clock) and match the committed fixture at
//! `tests/fixtures/metrics_journal.jsonl`. `scripts/verify.sh` performs
//! the same diff against the release binary.

use cludistream_cli::{parse_args, run, Command};

/// The workload `scripts/verify.sh` smoke-tests: all defaults.
fn default_metrics(journal: &std::path::Path) -> Command {
    Command::Metrics {
        sites: 2,
        chunks: 2,
        seed: 7,
        epsilon: 0.15,
        threads: 1,
        journal: Some(journal.to_string_lossy().into_owned()),
        reliable: false,
    }
}

fn run_and_read(path: &std::path::Path) -> (String, String) {
    let mut out = Vec::new();
    run(default_metrics(path), &mut out).expect("metrics run succeeds");
    let journal = std::fs::read_to_string(path).expect("journal written");
    let _ = std::fs::remove_file(path);
    (String::from_utf8(out).expect("utf-8 table"), journal)
}

#[test]
fn journal_is_deterministic_and_matches_fixture() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let (table, first) = run_and_read(&dir.join(format!("cludistream_golden_{pid}_a.jsonl")));
    let (_, second) = run_and_read(&dir.join(format!("cludistream_golden_{pid}_b.jsonl")));

    // Byte-identical across two consecutive runs.
    assert_eq!(first, second, "journal not deterministic across runs");

    // And identical to the committed golden fixture.
    let fixture = include_str!("fixtures/metrics_journal.jsonl");
    assert_eq!(first, fixture, "journal diverged from tests/fixtures/metrics_journal.jsonl");

    // The acceptance set: at least one of each event kind.
    for kind in ["ChunkTested", "Reclustered", "SynopsisSent", "Merge", "EmConverged"] {
        assert!(
            first.contains(&format!("\"event\":\"{kind}\"")),
            "journal missing a {kind} event:\n{first}"
        );
    }

    // Journal lines are well-formed: every line carries a sim-time stamp
    // and sim-time never decreases.
    let mut last_t = 0u64;
    for line in first.lines() {
        assert!(line.starts_with("{\"t\":"), "line missing sim-time: {line}");
        let t: u64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .and_then(|s| s.parse().ok())
            .expect("numeric sim-time");
        assert!(t >= last_t, "sim-time went backwards: {line}");
        last_t = t;
    }

    // The human table reports the registry, not the journal.
    assert!(table.contains("counters:"), "{table}");
    assert!(table.contains("em.fits"), "{table}");
    assert!(table.contains("events recorded:"), "{table}");
}

#[test]
fn metrics_args_parse() {
    let args: Vec<String> = ["metrics", "--sites", "3", "--chunks", "1", "--journal", "x.jsonl"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    match parse_args(&args).expect("valid args") {
        Command::Metrics { sites, chunks, seed, epsilon, journal, .. } => {
            assert_eq!(sites, 3);
            assert_eq!(chunks, 1);
            assert_eq!(seed, 7);
            assert_eq!(epsilon, 0.15);
            assert_eq!(journal.as_deref(), Some("x.jsonl"));
        }
        other => panic!("parsed {other:?}"),
    }
}

#[test]
fn metrics_without_journal_prints_table_only() {
    let mut out = Vec::new();
    run(
        Command::Metrics {
            sites: 2,
            chunks: 1,
            seed: 7,
            epsilon: 0.15,
            threads: 1,
            journal: None,
            reliable: false,
        },
        &mut out,
    )
    .expect("metrics run succeeds");
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("coordinator groups:"), "{text}");
    assert!(!text.contains("journal written"), "{text}");
}
