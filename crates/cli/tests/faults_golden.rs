//! Golden-file test for the `faults` event journal.
//!
//! The default `cludistream faults` workload injects random loss,
//! duplication, and reordering, and crashes site 0 mid-run — yet its
//! journal must be byte-identical across runs (fault decisions come from
//! a dedicated seeded RNG stream and events are stamped with sim-time)
//! and match the committed fixture at
//! `tests/fixtures/faults_journal.jsonl`. `scripts/verify.sh` performs
//! the same diff against the release binary.

use cludistream_cli::{parse_args, run, Command};

/// The workload `scripts/verify.sh` smoke-tests: all defaults.
fn default_faults(journal: &std::path::Path) -> Command {
    Command::Faults {
        sites: 2,
        chunks: 2,
        seed: 7,
        epsilon: 0.15,
        drop: 0.1,
        duplicate: 0.05,
        reorder: 0.25,
        threads: 1,
        journal: Some(journal.to_string_lossy().into_owned()),
    }
}

fn run_and_read(path: &std::path::Path) -> (String, String) {
    let mut out = Vec::new();
    run(default_faults(path), &mut out).expect("faults run succeeds");
    let journal = std::fs::read_to_string(path).expect("journal written");
    let _ = std::fs::remove_file(path);
    (String::from_utf8(out).expect("utf-8 table"), journal)
}

#[test]
fn fault_journal_is_deterministic_and_matches_fixture() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let (table, first) = run_and_read(&dir.join(format!("cludistream_faults_{pid}_a.jsonl")));
    let (_, second) = run_and_read(&dir.join(format!("cludistream_faults_{pid}_b.jsonl")));

    // Byte-identical across two consecutive runs: the fault trace replays.
    assert_eq!(first, second, "fault journal not deterministic across runs");

    // And identical to the committed golden fixture.
    let fixture = include_str!("fixtures/faults_journal.jsonl");
    assert_eq!(first, fixture, "journal diverged from tests/fixtures/faults_journal.jsonl");

    // The acceptance set: the fault layer and the recovery path both fire.
    for kind in ["Dropped", "Retransmitted", "SiteCrashed", "SiteRecovered", "SynopsisSent"] {
        assert!(
            first.contains(&format!("\"event\":\"{kind}\"")),
            "journal missing a {kind} event:\n{first}"
        );
    }

    // The human-readable report accounts for the faults.
    assert!(table.contains("delivery (reliable = true):"), "{table}");
    assert!(table.contains("(balanced)"), "{table}");
    assert!(table.contains("crashes 1 | restarts 1"), "{table}");
}

#[test]
fn faults_args_parse() {
    let args: Vec<String> =
        ["faults", "--sites", "3", "--drop", "0.2", "--reorder", "0", "--journal", "x.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    match parse_args(&args).expect("valid args") {
        Command::Faults {
            sites, chunks, seed, epsilon, drop, duplicate, reorder, journal, ..
        } => {
            assert_eq!(sites, 3);
            assert_eq!(chunks, 2);
            assert_eq!(seed, 7);
            assert_eq!(epsilon, 0.15);
            assert_eq!(drop, 0.2);
            assert_eq!(duplicate, 0.05);
            assert_eq!(reorder, 0.0);
            assert_eq!(journal.as_deref(), Some("x.jsonl"));
        }
        other => panic!("parsed {other:?}"),
    }
}
