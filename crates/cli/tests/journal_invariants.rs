//! Structural invariants over the committed journal fixtures.
//!
//! The journal is an append-only record of one discrete-event simulation,
//! so beyond the byte-for-byte golden diffs the fixtures must satisfy:
//! timestamps are monotone non-decreasing — globally (one writer, one
//! simulated clock) and therefore also per emitting node.

/// Extracts `"key":<int>` from a JSONL line.
fn field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The emitting node of a journal line: site events carry `"site"`,
/// fault/lifecycle events `"node"`, link events `"from"`; the rest
/// (coordinator-side) fall in one shared bucket.
fn emitter(line: &str) -> u64 {
    field(line, "site")
        .or_else(|| field(line, "node"))
        .or_else(|| field(line, "from"))
        .unwrap_or(u64::MAX)
}

fn check_monotone_per_node(journal: &str, which: &str) {
    let mut last: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for line in journal.lines() {
        let t = field(line, "t").unwrap_or_else(|| panic!("{which}: no sim-time in {line}"));
        let node = emitter(line);
        if let Some(&prev) = last.get(&node) {
            assert!(
                t >= prev,
                "{which}: node {node} time went backwards ({prev} -> {t}): {line}"
            );
        }
        last.insert(node, t);
        lines += 1;
    }
    assert!(lines > 0, "{which}: empty fixture");
    assert!(last.len() > 1, "{which}: expected events from more than one node");
}

#[test]
fn metrics_fixture_timestamps_monotone_per_node() {
    check_monotone_per_node(include_str!("fixtures/metrics_journal.jsonl"), "metrics");
}

#[test]
fn faults_fixture_timestamps_monotone_per_node() {
    check_monotone_per_node(include_str!("fixtures/faults_journal.jsonl"), "faults");
}
