//! Little-endian byte buffers for the CluDistream wire formats.
//!
//! The communication-cost experiments (paper Sec. 5.3, Figs. 2 and 7)
//! measure *bytes transmitted*, so every wire format in the workspace —
//! the model-synopsis codec, the site ↔ coordinator protocol, and site
//! snapshots — is written against an explicit byte layout. This crate is
//! the only place that layout's primitives live: [`ByteBuf`] appends
//! fixed-width little-endian values to a growable buffer, and
//! [`ByteReader`] consumes them from the front.
//!
//! The encoding is exactly the one the formats used historically (the
//! `put_u32_le` / `get_u32_le` little-endian convention), which the
//! golden-bytes fixtures in `cludistream-gmm` lock in place.
//!
//! `ByteReader`'s getters panic on underflow, mirroring the usual
//! `Buf`-style contract; decoders check [`ByteReader::remaining`] before
//! every read so malformed input surfaces as an `Err`, never a panic.
//!
//! ```
//! use cludistream_wire::ByteBuf;
//!
//! let mut buf = ByteBuf::new();
//! buf.put_u8(7);
//! buf.put_u32_le(0xDEAD_BEEF);
//! buf.put_f64_le(-2.5);
//! assert_eq!(buf.len(), 1 + 4 + 8);
//!
//! let mut r = buf.reader();
//! assert_eq!(r.get_u8(), 7);
//! assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
//! assert_eq!(r.get_f64_le(), -2.5);
//! assert_eq!(r.remaining(), 0);
//! ```

use std::ops::{Deref, DerefMut, RangeTo};

/// A growable byte buffer with little-endian append methods.
///
/// Fills the role `bytes::BytesMut`/`Bytes` used to play: build a message
/// with the `put_*` methods, hand it around by value or `clone()`, and
/// decode it through [`ByteBuf::reader`]. Dereferences to `[u8]` so
/// indexing and slicing work directly (the corruption tests flip bytes in
/// place).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// An empty buffer.
    pub fn new() -> ByteBuf {
        ByteBuf { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> ByteBuf {
        ByteBuf { data: Vec::with_capacity(capacity) }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits, little-endian.
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// The underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// An owned prefix copy — `buf.slice(..n)` — used by the truncation
    /// tests.
    pub fn slice(&self, range: RangeTo<usize>) -> ByteBuf {
        ByteBuf { data: self.data[range].to_vec() }
    }

    /// A read cursor over the whole buffer.
    pub fn reader(&self) -> ByteReader<'_> {
        ByteReader::new(&self.data)
    }
}

impl Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for ByteBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for ByteBuf {
    fn from(data: Vec<u8>) -> ByteBuf {
        ByteBuf { data }
    }
}

impl From<&[u8]> for ByteBuf {
    fn from(data: &[u8]) -> ByteBuf {
        ByteBuf { data: data.to_vec() }
    }
}

/// A read cursor over a byte slice, consuming little-endian values from
/// the front.
///
/// Getters panic if fewer bytes remain than the value needs; callers
/// guard with [`ByteReader::remaining`], exactly as the decoders did with
/// `bytes::Buf`.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// The unconsumed tail.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Skips `n` bytes. Panics if fewer remain.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.remaining(), "read past end of buffer");
        let out: [u8; N] = self.data[self.pos..self.pos + N].try_into().expect("length checked");
        self.pos += N;
        out
    }

    /// Consumes a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take::<1>())
    }

    /// Consumes a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    /// Consumes a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    /// Consumes a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    /// Consumes a little-endian `f64`.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = ByteBuf::with_capacity(23);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f64_le(std::f64::consts::PI);
        assert_eq!(buf.len(), 23);

        let mut r = buf.reader();
        assert_eq!(r.remaining(), 23);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = ByteBuf::new();
        buf.put_u32_le(0x0102_0304);
        assert_eq!(buf.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn nan_bits_preserved() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = ByteBuf::new();
        buf.put_f64_le(nan);
        assert_eq!(buf.reader().get_f64_le().to_bits(), nan.to_bits());
    }

    #[test]
    fn slice_and_indexing() {
        let mut buf = ByteBuf::new();
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(buf.slice(..3).as_slice(), &[1, 2, 3]);
        assert_eq!(buf[4], 5);
        let mut corrupt = buf.clone();
        corrupt[0] ^= 0xFF;
        assert_eq!(corrupt[0], 0xFE);
        assert_eq!(&buf[1..3], &[2, 3]);
    }

    #[test]
    fn advance_and_rest() {
        let data = [9u8, 8, 7, 6];
        let mut r = ByteReader::new(&data);
        r.advance(2);
        assert_eq!(r.rest(), &[7, 6]);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn conversions() {
        let buf: ByteBuf = vec![1u8, 2].into();
        assert_eq!(buf.len(), 2);
        let buf2: ByteBuf = buf.as_slice().into();
        assert_eq!(buf, buf2);
        assert_eq!(buf.into_vec(), vec![1, 2]);
    }
}
