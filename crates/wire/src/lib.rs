//! Little-endian byte buffers for the CluDistream wire formats.
//!
//! The communication-cost experiments (paper Sec. 5.3, Figs. 2 and 7)
//! measure *bytes transmitted*, so every wire format in the workspace —
//! the model-synopsis codec, the site ↔ coordinator protocol, and site
//! snapshots — is written against an explicit byte layout. This crate is
//! the only place that layout's primitives live: [`ByteBuf`] appends
//! fixed-width little-endian values to a growable buffer, and
//! [`ByteReader`] consumes them from the front.
//!
//! The encoding is exactly the one the formats used historically (the
//! `put_u32_le` / `get_u32_le` little-endian convention), which the
//! golden-bytes fixtures in `cludistream-gmm` lock in place.
//!
//! `ByteReader`'s getters panic on underflow, mirroring the usual
//! `Buf`-style contract; decoders check [`ByteReader::remaining`] before
//! every read so malformed input surfaces as an `Err`, never a panic.
//!
//! ```
//! use cludistream_wire::ByteBuf;
//!
//! let mut buf = ByteBuf::new();
//! buf.put_u8(7);
//! buf.put_u32_le(0xDEAD_BEEF);
//! buf.put_f64_le(-2.5);
//! assert_eq!(buf.len(), 1 + 4 + 8);
//!
//! let mut r = buf.reader();
//! assert_eq!(r.get_u8(), 7);
//! assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
//! assert_eq!(r.get_f64_le(), -2.5);
//! assert_eq!(r.remaining(), 0);
//! ```

use std::ops::{Deref, DerefMut, RangeTo};

/// A growable byte buffer with little-endian append methods.
///
/// Fills the role `bytes::BytesMut`/`Bytes` used to play: build a message
/// with the `put_*` methods, hand it around by value or `clone()`, and
/// decode it through [`ByteBuf::reader`]. Dereferences to `[u8]` so
/// indexing and slicing work directly (the corruption tests flip bytes in
/// place).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// An empty buffer.
    pub fn new() -> ByteBuf {
        ByteBuf { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> ByteBuf {
        ByteBuf { data: Vec::with_capacity(capacity) }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits, little-endian.
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// The underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// An owned prefix copy — `buf.slice(..n)` — used by the truncation
    /// tests.
    pub fn slice(&self, range: RangeTo<usize>) -> ByteBuf {
        ByteBuf { data: self.data[range].to_vec() }
    }

    /// Appends a length-prefixed byte string: `u32-le length | bytes`.
    /// The telemetry codec uses this for metric names and journal lines.
    pub fn put_var_bytes(&mut self, bytes: &[u8]) {
        self.put_u32_le(bytes.len() as u32);
        self.data.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string (same layout as
    /// [`ByteBuf::put_var_bytes`]).
    pub fn put_var_str(&mut self, s: &str) {
        self.put_var_bytes(s.as_bytes());
    }

    /// A read cursor over the whole buffer.
    pub fn reader(&self) -> ByteReader<'_> {
        ByteReader::new(&self.data)
    }
}

impl Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for ByteBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for ByteBuf {
    fn from(data: Vec<u8>) -> ByteBuf {
        ByteBuf { data }
    }
}

impl From<&[u8]> for ByteBuf {
    fn from(data: &[u8]) -> ByteBuf {
        ByteBuf { data: data.to_vec() }
    }
}

/// A read cursor over a byte slice, consuming little-endian values from
/// the front.
///
/// Getters panic if fewer bytes remain than the value needs; callers
/// guard with [`ByteReader::remaining`], exactly as the decoders did with
/// `bytes::Buf`.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// The unconsumed tail.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Skips `n` bytes. Panics if fewer remain.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.remaining(), "read past end of buffer");
        let out: [u8; N] = self.data[self.pos..self.pos + N].try_into().expect("length checked");
        self.pos += N;
        out
    }

    /// Consumes a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take::<1>())
    }

    /// The next byte without consuming it; `None` when exhausted. Lets a
    /// decoder dispatch on an embedded tag that an inner codec will
    /// consume itself.
    pub fn peek_u8(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    /// Consumes a little-endian `u16`.
    pub fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    /// Consumes a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    /// Consumes a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    /// Consumes a little-endian `f64`.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take::<8>())
    }

    /// Consumes a length-prefixed byte string written by
    /// [`ByteBuf::put_var_bytes`]. Unlike the fixed-width getters this
    /// never panics: `None` means the prefix or the payload is truncated,
    /// letting decoders propagate malformed input as an error.
    pub fn get_var_bytes(&mut self) -> Option<Vec<u8>> {
        if self.remaining() < 4 {
            return None;
        }
        let len = self.get_u32_le() as usize;
        if self.remaining() < len {
            return None;
        }
        let out = self.data[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Some(out)
    }

    /// Consumes a length-prefixed UTF-8 string written by
    /// [`ByteBuf::put_var_str`]. `None` on truncation or invalid UTF-8.
    pub fn get_var_str(&mut self) -> Option<String> {
        String::from_utf8(self.get_var_bytes()?).ok()
    }
}

/// Length-prefixed stream framing for the socket transport.
///
/// A TCP connection is a byte stream with no message boundaries, so the
/// socket runtime wraps every encoded [`ByteBuf`] payload in a 4-byte
/// little-endian length prefix:
///
/// ```text
/// u32 payload length (little-endian) | payload bytes
/// ```
///
/// The payload bytes are *exactly* the frame encoding the discrete-event
/// simulator delivers as one message — the prefix is transport overhead,
/// never part of the synopsis wire format, so byte accounting stays
/// comparable across transports by counting payload bytes only.
pub mod framing {
    use std::io::{self, Read, Write};

    /// Bytes of the length prefix preceding every payload.
    pub const LENGTH_PREFIX_BYTES: usize = 4;

    /// Upper bound on a single payload. A synopsis for K components in d
    /// dimensions is ~`K·(1 + d + d²)·8` bytes; 64 MiB covers K and d far
    /// beyond anything the coordinator accepts, while bounding how much a
    /// malformed or hostile peer can make the reader buffer.
    pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

    /// Writes one length-prefixed frame. A payload exceeding
    /// [`MAX_FRAME_BYTES`] is refused with an `InvalidData` error instead
    /// of being written (the peer would refuse to read it anyway).
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
            ));
        }
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(payload)
    }

    /// Incremental reader for length-prefixed frames.
    ///
    /// TCP delivers bytes in arbitrary pieces — a frame can arrive split
    /// across reads, or several frames can arrive in one read, and a read
    /// timeout can interrupt mid-frame. `FrameReader` buffers partial data
    /// across [`FrameReader::poll`] calls so none of that is visible to
    /// the caller: each call returns only *complete* payloads, in order.
    #[derive(Debug, Default)]
    pub struct FrameReader {
        buf: Vec<u8>,
    }

    /// What one [`FrameReader::poll`] observed on the stream.
    #[derive(Debug)]
    pub struct Polled {
        /// Complete frames extracted, oldest first.
        pub frames: Vec<Vec<u8>>,
        /// True when the peer closed the stream (EOF).
        pub eof: bool,
    }

    impl FrameReader {
        /// A reader with no buffered bytes.
        pub fn new() -> FrameReader {
            FrameReader::default()
        }

        /// Bytes buffered while waiting for the rest of a frame.
        pub fn buffered(&self) -> usize {
            self.buf.len()
        }

        /// Reads whatever the stream currently has and returns every
        /// complete frame. `WouldBlock`/`TimedOut` (a read timeout on a
        /// blocking socket) is not an error — it ends the poll with the
        /// frames extracted so far. A declared length beyond
        /// [`MAX_FRAME_BYTES`] is an `InvalidData` error: the stream is
        /// unrecoverable after it, since resynchronizing on a corrupt
        /// prefix is impossible.
        pub fn poll(&mut self, r: &mut impl Read) -> io::Result<Polled> {
            let mut scratch = [0u8; 16 * 1024];
            let mut eof = false;
            loop {
                match r.read(&mut scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.buf.extend_from_slice(&scratch[..n]);
                        // Keep draining while full reads suggest more is
                        // pending; a short read means the socket is empty.
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            let frames = self.extract()?;
            Ok(Polled { frames, eof })
        }

        /// Extracts every complete frame from the internal buffer.
        fn extract(&mut self) -> io::Result<Vec<Vec<u8>>> {
            let mut frames = Vec::new();
            let mut offset = 0usize;
            while self.buf.len() - offset >= LENGTH_PREFIX_BYTES {
                let len = u32::from_le_bytes(
                    self.buf[offset..offset + LENGTH_PREFIX_BYTES].try_into().expect("4 bytes"),
                ) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("peer declared a {len}-byte frame"),
                    ));
                }
                if self.buf.len() - offset - LENGTH_PREFIX_BYTES < len {
                    break;
                }
                let start = offset + LENGTH_PREFIX_BYTES;
                frames.push(self.buf[start..start + len].to_vec());
                offset = start + len;
            }
            if offset > 0 {
                self.buf.drain(..offset);
            }
            Ok(frames)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_does_not_consume() {
        let mut buf = ByteBuf::new();
        buf.put_u8(7);
        let mut r = buf.reader();
        assert_eq!(r.peek_u8(), Some(7));
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.peek_u8(), None);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = ByteBuf::with_capacity(23);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f64_le(std::f64::consts::PI);
        assert_eq!(buf.len(), 23);

        let mut r = buf.reader();
        assert_eq!(r.remaining(), 23);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = ByteBuf::new();
        buf.put_u32_le(0x0102_0304);
        assert_eq!(buf.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn nan_bits_preserved() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = ByteBuf::new();
        buf.put_f64_le(nan);
        assert_eq!(buf.reader().get_f64_le().to_bits(), nan.to_bits());
    }

    #[test]
    fn slice_and_indexing() {
        let mut buf = ByteBuf::new();
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(buf.slice(..3).as_slice(), &[1, 2, 3]);
        assert_eq!(buf[4], 5);
        let mut corrupt = buf.clone();
        corrupt[0] ^= 0xFF;
        assert_eq!(corrupt[0], 0xFE);
        assert_eq!(&buf[1..3], &[2, 3]);
    }

    #[test]
    fn advance_and_rest() {
        let data = [9u8, 8, 7, 6];
        let mut r = ByteReader::new(&data);
        r.advance(2);
        assert_eq!(r.rest(), &[7, 6]);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn var_bytes_roundtrip() {
        let mut buf = ByteBuf::new();
        buf.put_var_str("em.cost_us");
        buf.put_var_bytes(b"");
        buf.put_var_bytes(&[0xFF, 0x00, 0x7F]);
        let mut r = buf.reader();
        assert_eq!(r.get_var_str().as_deref(), Some("em.cost_us"));
        assert_eq!(r.get_var_bytes(), Some(Vec::new()));
        assert_eq!(r.get_var_bytes(), Some(vec![0xFF, 0x00, 0x7F]));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn var_bytes_truncation_is_none_not_panic() {
        let mut buf = ByteBuf::new();
        buf.put_var_str("site0.net.bytes");
        for len in 0..buf.len() {
            let cut = buf.slice(..len);
            assert_eq!(cut.reader().get_var_bytes(), None, "truncated at {len}");
        }
        // A declared length past the end must also fail cleanly.
        let mut lying = ByteBuf::new();
        lying.put_u32_le(100);
        lying.put_u8(1);
        assert_eq!(lying.reader().get_var_bytes(), None);
    }

    #[test]
    fn var_str_rejects_invalid_utf8() {
        let mut buf = ByteBuf::new();
        buf.put_var_bytes(&[0xFF, 0xFE]);
        assert_eq!(buf.reader().get_var_str(), None);
    }

    #[test]
    fn conversions() {
        let buf: ByteBuf = vec![1u8, 2].into();
        assert_eq!(buf.len(), 2);
        let buf2: ByteBuf = buf.as_slice().into();
        assert_eq!(buf, buf2);
        assert_eq!(buf.into_vec(), vec![1, 2]);
    }

    mod framing {
        use crate::framing::{write_frame, FrameReader, LENGTH_PREFIX_BYTES, MAX_FRAME_BYTES};
        use std::io::{self, Read};

        /// A `Read` impl that serves a byte script in fixed-size pieces,
        /// mimicking TCP's arbitrary segmentation.
        struct Chunked {
            data: Vec<u8>,
            pos: usize,
            chunk: usize,
        }

        impl Read for Chunked {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.data.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
                }
                let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        fn encode(payloads: &[&[u8]]) -> Vec<u8> {
            let mut wire = Vec::new();
            for p in payloads {
                write_frame(&mut wire, p).expect("write");
            }
            wire
        }

        #[test]
        fn roundtrip_multiple_frames_one_read() {
            let wire = encode(&[b"alpha", b"", b"gamma-synopsis"]);
            let mut reader = FrameReader::new();
            let mut src = Chunked { data: wire, pos: 0, chunk: 1 << 20 };
            let polled = reader.poll(&mut src).expect("poll");
            assert!(!polled.eof);
            assert_eq!(polled.frames, vec![b"alpha".to_vec(), Vec::new(), b"gamma-synopsis".to_vec()]);
            assert_eq!(reader.buffered(), 0);
        }

        #[test]
        fn frames_split_across_single_byte_reads() {
            let wire = encode(&[&[1, 2, 3], &[0xFF; 300]]);
            let mut reader = FrameReader::new();
            let mut collected = Vec::new();
            // One byte per poll: every frame boundary is crossed mid-read.
            for i in 0..wire.len() {
                let mut src = Chunked { data: wire[i..i + 1].to_vec(), pos: 0, chunk: 1 };
                collected.extend(reader.poll(&mut src).expect("poll").frames);
            }
            assert_eq!(collected, vec![vec![1, 2, 3], vec![0xFF; 300]]);
            assert_eq!(reader.buffered(), 0);
        }

        #[test]
        fn partial_prefix_is_buffered_not_lost() {
            let wire = encode(&[b"payload"]);
            let mut reader = FrameReader::new();
            let mut head = Chunked { data: wire[..2].to_vec(), pos: 0, chunk: 2 };
            let polled = reader.poll(&mut head).expect("poll");
            assert!(polled.frames.is_empty());
            assert_eq!(reader.buffered(), 2);
            let mut tail = Chunked { data: wire[2..].to_vec(), pos: 0, chunk: 64 };
            let polled = reader.poll(&mut tail).expect("poll");
            assert_eq!(polled.frames, vec![b"payload".to_vec()]);
        }

        #[test]
        fn eof_reported_after_final_frame() {
            let wire = encode(&[b"last"]);
            let mut reader = FrameReader::new();
            // io::Cursor returns Ok(0) at end of data — a closed stream.
            // The first poll ends on the short read that drained the data;
            // the closed stream is observed on the next poll.
            let mut src = io::Cursor::new(wire);
            let polled = reader.poll(&mut src).expect("poll");
            assert_eq!(polled.frames, vec![b"last".to_vec()]);
            let polled = reader.poll(&mut src).expect("poll");
            assert!(polled.eof);
            assert!(polled.frames.is_empty());
        }

        #[test]
        fn oversize_declared_length_is_invalid_data() {
            let mut wire = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 8]);
            let mut reader = FrameReader::new();
            let mut src = io::Cursor::new(wire);
            let err = reader.poll(&mut src).expect_err("oversize must error");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }

        #[test]
        fn oversize_payload_refused_on_write() {
            struct NullSink;
            impl io::Write for NullSink {
                fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                    Ok(b.len())
                }
                fn flush(&mut self) -> io::Result<()> {
                    Ok(())
                }
            }
            let big = vec![0u8; MAX_FRAME_BYTES + 1];
            let err = write_frame(&mut NullSink, &big).expect_err("oversize must error");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }

        #[test]
        fn prefix_is_four_bytes_little_endian() {
            let wire = encode(&[&[0xAA; 5]]);
            assert_eq!(LENGTH_PREFIX_BYTES, 4);
            assert_eq!(&wire[..4], &[5, 0, 0, 0]);
            assert_eq!(wire.len(), 4 + 5);
        }
    }
}
