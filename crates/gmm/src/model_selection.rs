//! Automatic component-count selection.
//!
//! The paper "do[es] not assume the constant number of component models
//! for the data stream" — a new model is learned whenever the data stops
//! fitting. Choosing K for each *newly learned* model is the remaining
//! degree of freedom; [`fit_em_bic`] searches a K range and keeps the fit
//! with the best Bayesian Information Criterion
//! `BIC = −2·LL + p·ln(N)` (lower is better), the standard mixture-order
//! selector.

use crate::{fit_em, free_parameters, EmConfig, EmFit, GmmError, Result};
use cludistream_linalg::Vector;

/// An [`EmFit`] annotated with its BIC score.
#[derive(Debug, Clone)]
pub struct ScoredFit {
    /// The fit.
    pub fit: EmFit,
    /// Components used.
    pub k: usize,
    /// `−2·LL + p·ln N` (lower is better).
    pub bic: f64,
}

/// BIC of a fit with `k` components on `n` records.
pub fn bic(fit: &EmFit, k: usize, dim: usize, n: usize, config: &EmConfig) -> f64 {
    let p = free_parameters(k, dim, config.covariance) as f64;
    -2.0 * fit.log_likelihood + p * (n.max(1) as f64).ln()
}

/// Fits EM for every `K ∈ k_range` and returns the BIC-best fit along with
/// the full score table (useful for diagnostics). `config.k` is ignored.
pub fn fit_em_bic(
    data: &[Vector],
    k_range: std::ops::RangeInclusive<usize>,
    config: &EmConfig,
) -> Result<(ScoredFit, Vec<(usize, f64)>)> {
    if k_range.is_empty() {
        return Err(GmmError::InvalidParameter { name: "k_range", constraint: "non-empty" });
    }
    let dim = data.first().map(|x| x.dim()).unwrap_or(0);
    let mut best: Option<ScoredFit> = None;
    let mut table = Vec::new();
    for k in k_range {
        let cfg = EmConfig { k, ..config.clone() };
        let fit = match fit_em(data, &cfg) {
            Ok(f) => f,
            // K too large for the data: stop the search here.
            Err(GmmError::NotEnoughData { .. }) => break,
            Err(e) => return Err(e),
        };
        let score = bic(&fit, k, dim, data.len(), &cfg);
        table.push((k, score));
        if best.as_ref().is_none_or(|b| score < b.bic) {
            best = Some(ScoredFit { fit, k, bic: score });
        }
    }
    let best = best.ok_or(GmmError::NotEnoughData { have: data.len(), need: 1 })?;
    Ok((best, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gaussian, Mixture};
    use cludistream_rng::StdRng;

    fn blobs(centers: &[f64], n: usize, seed: u64) -> Vec<Vector> {
        let comps: Vec<Gaussian> = centers
            .iter()
            .map(|&c| Gaussian::spherical(Vector::from_slice(&[c]), 0.3).unwrap())
            .collect();
        let mix = Mixture::uniform(comps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| mix.sample(&mut rng)).collect()
    }

    #[test]
    fn bic_recovers_true_component_count() {
        for true_k in [1usize, 2, 3] {
            let centers: Vec<f64> = (0..true_k).map(|i| i as f64 * 12.0).collect();
            let data = blobs(&centers, 600, 42 + true_k as u64);
            let (best, table) =
                fit_em_bic(&data, 1..=5, &EmConfig { seed: 1, ..Default::default() }).unwrap();
            assert_eq!(best.k, true_k, "true K {true_k}: table {table:?}");
        }
    }

    #[test]
    fn bic_penalizes_overfitting() {
        let data = blobs(&[0.0], 400, 7);
        let (_, table) =
            fit_em_bic(&data, 1..=4, &EmConfig { seed: 2, ..Default::default() }).unwrap();
        // BIC at K=1 must beat K=4 on unimodal data.
        let k1 = table.iter().find(|(k, _)| *k == 1).unwrap().1;
        let k4 = table.iter().find(|(k, _)| *k == 4).unwrap().1;
        assert!(k1 < k4, "BIC failed to penalize: K=1 {k1} vs K=4 {k4}");
    }

    #[test]
    fn k_range_capped_by_data_size() {
        let data = blobs(&[0.0], 3, 8);
        // K up to 10 requested, but only 3 records: the search must stop
        // gracefully and return the feasible best.
        let (best, table) =
            fit_em_bic(&data, 1..=10, &EmConfig { seed: 3, ..Default::default() }).unwrap();
        assert!(best.k <= 3);
        assert!(table.len() <= 3);
    }

    #[test]
    fn empty_range_rejected() {
        let data = blobs(&[0.0], 50, 9);
        #[allow(clippy::reversed_empty_ranges)]
        let r = fit_em_bic(&data, 3..=2, &EmConfig::default());
        assert!(r.is_err());
    }
}
