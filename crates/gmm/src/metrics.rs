//! External clustering-validation metrics.
//!
//! The paper evaluates models by average log likelihood (Definition 1);
//! when ground-truth labels exist — the synthetic generators expose their
//! regime/component identities — external indices give a complementary
//! view: [`purity`] (fraction of records whose cluster's majority label
//! matches theirs) and [`nmi`] (normalized mutual information between the
//! clustering and the labels).

use std::collections::HashMap;

/// Joint contingency counts between cluster assignments and labels.
fn contingency(assignments: &[usize], labels: &[usize]) -> HashMap<(usize, usize), usize> {
    assert_eq!(assignments.len(), labels.len(), "length mismatch");
    let mut table = HashMap::new();
    for (&a, &l) in assignments.iter().zip(labels) {
        *table.entry((a, l)).or_insert(0) += 1;
    }
    table
}

/// Clustering purity: `(1/N) Σ_clusters max_label |cluster ∩ label|`.
/// 1.0 means every cluster is label-pure; panics on empty or mismatched
/// inputs.
pub fn purity(assignments: &[usize], labels: &[usize]) -> f64 {
    assert!(!assignments.is_empty(), "purity of empty clustering");
    let table = contingency(assignments, labels);
    let mut best_per_cluster: HashMap<usize, usize> = HashMap::new();
    for (&(a, _), &count) in &table {
        let best = best_per_cluster.entry(a).or_insert(0);
        *best = (*best).max(count);
    }
    best_per_cluster.values().sum::<usize>() as f64 / assignments.len() as f64
}

/// Normalized mutual information `I(A;L) / sqrt(H(A)·H(L))` ∈ [0, 1]
/// (defined as 1 when either marginal entropy is zero and the other
/// partition is constant too, 0 otherwise).
pub fn nmi(assignments: &[usize], labels: &[usize]) -> f64 {
    assert!(!assignments.is_empty(), "nmi of empty clustering");
    let n = assignments.len() as f64;
    let table = contingency(assignments, labels);
    let mut row: HashMap<usize, usize> = HashMap::new();
    let mut col: HashMap<usize, usize> = HashMap::new();
    for (&(a, l), &c) in &table {
        *row.entry(a).or_insert(0) += c;
        *col.entry(l).or_insert(0) += c;
    }
    let entropy = |m: &HashMap<usize, usize>| -> f64 {
        m.values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hl) = (entropy(&row), entropy(&col));
    if ha == 0.0 || hl == 0.0 {
        // One partition is constant: NMI is 1 iff both are constant.
        return if ha == hl { 1.0 } else { 0.0 };
    }
    let mut mi = 0.0;
    for (&(a, l), &c) in &table {
        let p = c as f64 / n;
        let pa = row[&a] as f64 / n;
        let pl = col[&l] as f64 / n;
        mi += p * (p / (pa * pl)).ln();
    }
    (mi / (ha * hl).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let labels = [0, 0, 1, 1, 2, 2];
        assert_eq!(purity(&labels, &labels), 1.0);
        assert!((nmi(&labels, &labels) - 1.0).abs() < 1e-12);
        // Permuted cluster ids are still perfect.
        let renamed = [5, 5, 9, 9, 7, 7];
        assert_eq!(purity(&renamed, &labels), 1.0);
        assert!((nmi(&renamed, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_like_clustering_scores_low() {
        // Assignments independent of labels.
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        let assignments = [0, 0, 1, 1, 0, 0, 1, 1];
        assert!(nmi(&assignments, &labels) < 0.05);
        assert!((purity(&assignments, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_has_zero_nmi_against_varied_labels() {
        let labels = [0, 1, 2, 0, 1, 2];
        let assignments = [0; 6];
        assert_eq!(nmi(&assignments, &labels), 0.0);
        // Purity of one big cluster is the majority fraction: 2/6.
        assert!((purity(&assignments, &labels) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn over_clustering_keeps_purity_but_lowers_nmi() {
        let labels = [0, 0, 0, 0, 1, 1, 1, 1];
        // Each label split into two clusters: purity stays 1, NMI < 1.
        let assignments = [0, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(purity(&assignments, &labels), 1.0);
        let v = nmi(&assignments, &labels);
        assert!(v > 0.5 && v < 1.0, "nmi {v}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = purity(&[0, 1], &[0]);
    }
}
