/// Covariance structure used by EM and the wire codec.
///
/// The paper's Theorem 3 notes that for diagonal Gaussians the covariance
/// can be represented by a d-dimensional vector instead of a d×d matrix;
/// this enum selects that trade-off. `Full` is the default everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CovarianceType {
    /// Full d×d covariance matrices.
    #[default]
    Full,
    /// Diagonal covariances (axis-aligned Gaussians); EM zeroes the
    /// off-diagonal scatter and the codec transmits d values per component.
    Diagonal,
}

impl CovarianceType {
    /// Number of f64 values needed to represent one covariance of dimension
    /// `d` under this type.
    pub fn param_count(self, d: usize) -> usize {
        match self {
            CovarianceType::Full => d * d,
            CovarianceType::Diagonal => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts() {
        assert_eq!(CovarianceType::Full.param_count(4), 16);
        assert_eq!(CovarianceType::Diagonal.param_count(4), 4);
        assert_eq!(CovarianceType::Full.param_count(0), 0);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(CovarianceType::default(), CovarianceType::Full);
    }
}
