use crate::{Batch, CovarianceType, Mixture, MixtureScratch, BLOCK};
use cludistream_linalg::Vector;

/// Average log likelihood of `data` under `mixture` — the paper's
/// Definition 1:
///
/// ```text
/// Avg_Pr = (1/|D|) Σ_{x∈D} log( Σ_j w_j p(x|j) )
/// ```
///
/// Free-function form of [`Mixture::avg_log_likelihood`], exported for use
/// in the test criterion.
pub fn avg_log_likelihood(mixture: &Mixture, data: &[Vector]) -> f64 {
    mixture.avg_log_likelihood(data)
}

/// Sharpened average log likelihood: for each record, use the *maximal*
/// per-component weighted log density `max_j log(w_j p(x|j))` instead of the
/// full mixture density. The paper's Theorem 2 proof sharpens the test this
/// way ("we use the maximal probability of x belongs to one of the clusters
/// instead of the overall probability").
pub fn sharpened_avg_log_likelihood(mixture: &Mixture, data: &[Vector]) -> f64 {
    if data.is_empty() {
        return f64::NEG_INFINITY;
    }
    // Batched evaluation: the weighted log-density table holds exactly the
    // `ln w_j + ln p(x|j)` terms the per-record path folded over, so the
    // per-record j-order max and flat record-order sum are bit-identical
    // to the scalar implementation this replaces.
    let batch = Batch::from_records(data);
    let mut scratch = MixtureScratch::default();
    let k = mixture.k();
    let mut total = 0.0;
    let mut start = 0;
    while start < batch.len() {
        let count = BLOCK.min(batch.len() - start);
        mixture.weighted_log_density_block(batch.rows(start, count), count, &mut scratch);
        for b in 0..count {
            let mut best = f64::NEG_INFINITY;
            for j in 0..k {
                best = best.max(scratch.weighted[j * count + b]);
            }
            total += best;
        }
        start += count;
    }
    total / data.len() as f64
}

/// The test statistic of the test-and-cluster strategy (paper Eq. 4):
/// `J_fit = |Avg_Pr_n − Avg_Pr_0|`. A chunk fits its model when
/// `J_fit ≤ ε`.
pub fn j_fit(avg_chunk: f64, avg_model: f64) -> f64 {
    (avg_chunk - avg_model).abs()
}

/// Standard deviation of the per-record log density `log p(x)` over `data`
/// under `mixture` — the σ̂ that calibrates the fit test's tolerance.
pub fn log_likelihood_std(mixture: &Mixture, data: &[Vector]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    // Per-record log densities via the batch kernel (bit-identical to
    // `log_pdf` per record), then the same flat mean/variance passes.
    let batch = Batch::from_records(data);
    let mut scratch = MixtureScratch::default();
    let mut lls = vec![0.0f64; data.len()];
    let mut start = 0;
    while start < data.len() {
        let count = BLOCK.min(data.len() - start);
        mixture.log_pdf_batch(
            batch.rows(start, count),
            &mut lls[start..start + count],
            &mut scratch,
        );
        start += count;
    }
    let mean = lls.iter().sum::<f64>() / lls.len() as f64;
    let var = lls.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lls.len() as f64;
    var.sqrt()
}

/// Number of free parameters of a K-component, d-dimensional Gaussian
/// mixture: `K·(d + cov) + (K−1)` with `cov = d(d+1)/2` for full and `d`
/// for diagonal covariances. Drives the AIC optimism correction of the fit
/// test.
pub fn free_parameters(k: usize, d: usize, cov: CovarianceType) -> usize {
    let cov_params = match cov {
        CovarianceType::Full => d * (d + 1) / 2,
        CovarianceType::Diagonal => d,
    };
    k * (d + cov_params) + k.saturating_sub(1)
}

/// Acklam's rational approximation of the standard normal quantile
/// Φ⁻¹(p), accurate to ~1.15e-9 over (0, 1). Panics outside (0, 1).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The calibrated fit-test tolerance:
/// `max(ε, p/M + z_{1−δ/2} · σ̂ · √(2/M))`.
///
/// The paper's Theorems 1/2 bound the concentration of the *sample mean*,
/// not of the average log likelihood itself. Two effects make the raw
/// `J_fit ≤ ε` test over-reject on stable streams: (a) `AvgPr₀` is the
/// model's *training* average and overestimates generalization by the AIC
/// optimism `p/M` (`p` = [`free_parameters`]); (b) `J_fit` is the
/// difference of two M-sample averages (the chunk's and the founding
/// chunk's), so its noise scale is `σ̂·√(2/M)`. Widening the tolerance to
/// the δ-quantile of that noise keeps δ's role as the false-alarm
/// probability while leaving ε dominant whenever it is the larger bound
/// (see DESIGN.md, "fit-test calibration").
pub fn fit_tolerance(
    epsilon: f64,
    delta: f64,
    ll_std: f64,
    chunk_size: usize,
    free_params: usize,
) -> f64 {
    let m = chunk_size.max(1) as f64;
    let z = standard_normal_quantile(1.0 - (delta / 2.0).clamp(1e-12, 0.5));
    epsilon.max(free_params as f64 / m + z * ll_std * (2.0 / m).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;

    fn mix() -> Mixture {
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[8.0]), 1.0).unwrap(),
            ],
            vec![0.5, 0.5],
        )
        .unwrap()
    }

    #[test]
    fn free_function_matches_method() {
        let m = mix();
        let data = vec![Vector::from_slice(&[0.1]), Vector::from_slice(&[7.9])];
        assert_eq!(avg_log_likelihood(&m, &data), m.avg_log_likelihood(&data));
    }

    #[test]
    fn sharpened_is_lower_bound() {
        // max_j w_j p(x|j) ≤ Σ_j w_j p(x|j), so the sharpened average is a
        // lower bound on Definition 1.
        let m = mix();
        let data: Vec<Vector> =
            (0..20).map(|i| Vector::from_slice(&[i as f64 * 0.5])).collect();
        assert!(sharpened_avg_log_likelihood(&m, &data) <= avg_log_likelihood(&m, &data) + 1e-12);
    }

    #[test]
    fn sharpened_close_for_separated_components() {
        // For well-separated components one term dominates the sum, so the
        // two statistics nearly coincide.
        let m = mix();
        let data = vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[8.0])];
        let diff = avg_log_likelihood(&m, &data) - sharpened_avg_log_likelihood(&m, &data);
        assert!(diff.abs() < 1e-6, "diff {diff}");
    }

    #[test]
    fn sharpened_bit_identical_to_per_record_reference() {
        let m = mix();
        let data: Vec<Vector> =
            (0..600).map(|i| Vector::from_slice(&[(i % 37) as f64 * 0.4])).collect();
        // Hand-rolled per-record reference (the pre-batching definition).
        let reference = data
            .iter()
            .map(|x| {
                m.components()
                    .iter()
                    .zip(m.log_weights())
                    .map(|(c, lw)| lw + c.log_pdf(x))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .sum::<f64>()
            / data.len() as f64;
        assert_eq!(sharpened_avg_log_likelihood(&m, &data).to_bits(), reference.to_bits());
    }

    #[test]
    fn ll_std_bit_identical_to_per_record_reference() {
        let m = mix();
        let data: Vec<Vector> =
            (0..300).map(|i| Vector::from_slice(&[(i % 23) as f64 * 0.3 - 2.0])).collect();
        let lls: Vec<f64> = data.iter().map(|x| m.log_pdf(x)).collect();
        let mean = lls.iter().sum::<f64>() / lls.len() as f64;
        let var =
            lls.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lls.len() as f64;
        assert_eq!(log_likelihood_std(&m, &data).to_bits(), var.sqrt().to_bits());
    }

    #[test]
    fn free_parameter_counts() {
        // K=5, d=4 full: 5*(4+10)+4 = 74.
        assert_eq!(free_parameters(5, 4, CovarianceType::Full), 74);
        // Diagonal: 5*(4+4)+4 = 44.
        assert_eq!(free_parameters(5, 4, CovarianceType::Diagonal), 44);
        assert_eq!(free_parameters(1, 1, CovarianceType::Full), 2);
    }

    #[test]
    fn quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((standard_normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        // Tail region (p < 0.02425) uses the other branch.
        assert!((standard_normal_quantile(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_out_of_range() {
        let _ = standard_normal_quantile(1.0);
    }

    #[test]
    fn ll_std_zero_for_constant_density() {
        let m = mix();
        assert_eq!(log_likelihood_std(&m, &[]), 0.0);
        assert_eq!(log_likelihood_std(&m, &[Vector::from_slice(&[0.0])]), 0.0);
        let same = vec![Vector::from_slice(&[1.0]); 5];
        assert!(log_likelihood_std(&m, &same) < 1e-12);
    }

    #[test]
    fn ll_std_positive_for_spread_data() {
        let m = mix();
        let data: Vec<Vector> = (0..50).map(|i| Vector::from_slice(&[i as f64 * 0.2])).collect();
        assert!(log_likelihood_std(&m, &data) > 0.1);
    }

    #[test]
    fn fit_tolerance_takes_the_larger_bound() {
        // Tiny noise and no parameters: ε dominates.
        assert_eq!(fit_tolerance(0.5, 0.01, 0.01, 10_000, 0), 0.5);
        // Large noise: the calibrated term dominates and shrinks with M.
        let loose = fit_tolerance(0.02, 0.01, 1.0, 100, 0);
        let tight = fit_tolerance(0.02, 0.01, 1.0, 10_000, 0);
        assert!(loose > tight);
        assert!(tight > 0.02);
        // z(0.995)·√2/√100 ≈ 0.3643 at M=100, σ=1, p=0.
        assert!((loose - 0.36428).abs() < 1e-3, "loose {loose}");
        // The optimism allowance adds p/M.
        let with_p = fit_tolerance(0.02, 0.01, 1.0, 100, 10);
        assert!((with_p - (loose + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn j_fit_is_absolute_difference() {
        assert_eq!(j_fit(-1.0, -1.5), 0.5);
        assert_eq!(j_fit(-1.5, -1.0), 0.5);
        assert_eq!(j_fit(-1.0, -1.0), 0.0);
    }

    #[test]
    fn empty_data_neg_inf() {
        let m = mix();
        assert_eq!(sharpened_avg_log_likelihood(&m, &[]), f64::NEG_INFINITY);
    }

    #[test]
    fn same_distribution_chunk_difference_shrinks_with_chunk_size() {
        // Empirical check of Theorems 1/2: the average-log-likelihood gap
        // between two same-distribution chunks concentrates as the chunk
        // grows (smaller ε → larger M → smaller J_fit on average).
        use cludistream_rng::StdRng;
        let m = mix();
        let mut rng = StdRng::seed_from_u64(42);
        let mean_gap = |chunk: usize, rng: &mut StdRng| -> f64 {
            let trials = 20;
            (0..trials)
                .map(|_| {
                    let c1: Vec<Vector> = (0..chunk).map(|_| m.sample(rng)).collect();
                    let c2: Vec<Vector> = (0..chunk).map(|_| m.sample(rng)).collect();
                    j_fit(avg_log_likelihood(&m, &c1), avg_log_likelihood(&m, &c2))
                })
                .sum::<f64>()
                / trials as f64
        };
        let small = crate::chunk_size(1, 0.2, 0.01).unwrap(); // ~40
        let large = crate::chunk_size(1, 0.01, 0.01).unwrap(); // ~784
        let gap_small = mean_gap(small, &mut rng);
        let gap_large = mean_gap(large, &mut rng);
        assert!(
            gap_large < gap_small,
            "concentration failed: gap({large})={gap_large} >= gap({small})={gap_small}"
        );
        // And at the large chunk size the gap is comfortably below ε = 0.1.
        assert!(gap_large < 0.1, "gap_large {gap_large}");
    }
}
