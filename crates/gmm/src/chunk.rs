//! Chunk-size theory (paper Sec. 4.1, Theorems 1 and 2).
//!
//! The data stream is conceptually divided into chunks of
//! `M = -2d ln(δ(2-δ)) / ε` records. Theorem 1 guarantees that with
//! probability at least `1-δ` the squared Mahalanobis distance between a
//! chunk's sample mean and the true mean is below ε; Theorem 2 lifts this to
//! the average-log-likelihood test used by the test-and-cluster strategy.

use crate::{GmmError, Result};

/// The (ε, δ) accuracy parameters controlling chunk size and the fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkParams {
    /// Error bound on the average log likelihood difference (paper default
    /// 0.02).
    pub epsilon: f64,
    /// Probability error bound (paper default 0.01).
    pub delta: f64,
}

impl ChunkParams {
    /// The paper's default experimental setting: ε = 0.02, δ = 0.01.
    pub const PAPER_DEFAULTS: ChunkParams = ChunkParams { epsilon: 0.02, delta: 0.01 };

    /// Validates 0 < ε and 0 < δ < 1.
    pub fn validate(&self) -> Result<()> {
        if self.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !self.epsilon.is_finite() {
            return Err(GmmError::InvalidParameter { name: "epsilon", constraint: "epsilon > 0" });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(GmmError::InvalidParameter { name: "delta", constraint: "0 < delta < 1" });
        }
        Ok(())
    }

    /// Chunk size for dimension `d`; see [`chunk_size`].
    pub fn chunk_size(&self, d: usize) -> Result<usize> {
        chunk_size(d, self.epsilon, self.delta)
    }
}

impl Default for ChunkParams {
    fn default() -> Self {
        Self::PAPER_DEFAULTS
    }
}

/// Theorem 1 chunk size `M = ⌈-2 d ln(δ(2-δ)) / ε⌉`, clamped below at
/// `d + 1` so a chunk can always support a covariance estimate.
///
/// With the paper's defaults (d=4, ε=0.02, δ=0.01) this is 1567.
pub fn chunk_size(d: usize, epsilon: f64, delta: f64) -> Result<usize> {
    ChunkParams { epsilon, delta }.validate()?;
    if d == 0 {
        return Err(GmmError::InvalidParameter { name: "d", constraint: "d >= 1" });
    }
    let m = (-2.0 * d as f64 * (delta * (2.0 - delta)).ln() / epsilon).ceil();
    if !m.is_finite() || m < 0.0 {
        return Err(GmmError::InvalidParameter {
            name: "epsilon/delta",
            constraint: "yield a finite positive chunk size",
        });
    }
    Ok((m as usize).max(d + 1))
}

/// Theorem 4 average processing cost model: `(P_d + λ(1 − P_d)) · C`,
/// where `C` is the cost of clustering a chunk, `λC` the cost of testing
/// one, and `P_d` the probability that a chunk carries a new distribution.
pub fn average_processing_cost(cluster_cost: f64, lambda: f64, p_d: f64) -> f64 {
    (p_d + lambda * (1.0 - p_d)) * cluster_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_chunk_size() {
        // M = -2*4*ln(0.01*1.99)/0.02 = 400 * 3.91704... ≈ 1566.8 → 1567.
        let m = chunk_size(4, 0.02, 0.01).unwrap();
        assert_eq!(m, 1567);
    }

    #[test]
    fn scales_linearly_in_d() {
        let m1 = chunk_size(1, 0.02, 0.01).unwrap();
        let m4 = chunk_size(4, 0.02, 0.01).unwrap();
        assert!((m4 as f64 / m1 as f64 - 4.0).abs() < 0.02);
    }

    #[test]
    fn shrinks_with_epsilon_grows_with_confidence() {
        let loose = chunk_size(4, 0.1, 0.01).unwrap();
        let tight = chunk_size(4, 0.01, 0.01).unwrap();
        assert!(tight > loose);
        let low_conf = chunk_size(4, 0.02, 0.1).unwrap();
        let high_conf = chunk_size(4, 0.02, 0.001).unwrap();
        assert!(high_conf > low_conf);
    }

    #[test]
    fn clamped_at_d_plus_one() {
        // Huge ε drives the formula to ~0; the clamp keeps covariance
        // estimation possible.
        let m = chunk_size(4, 1e9, 0.5).unwrap();
        assert_eq!(m, 5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(chunk_size(0, 0.02, 0.01).is_err());
        assert!(chunk_size(4, 0.0, 0.01).is_err());
        assert!(chunk_size(4, -1.0, 0.01).is_err());
        assert!(chunk_size(4, 0.02, 0.0).is_err());
        assert!(chunk_size(4, 0.02, 1.0).is_err());
        assert!(chunk_size(4, f64::NAN, 0.01).is_err());
    }

    #[test]
    fn params_struct_roundtrip() {
        let p = ChunkParams::PAPER_DEFAULTS;
        assert!(p.validate().is_ok());
        assert_eq!(p.chunk_size(4).unwrap(), 1567);
        assert_eq!(ChunkParams::default(), p);
    }

    #[test]
    fn cost_model_endpoints() {
        // P_d = 1: every chunk clusters → cost C.
        assert_eq!(average_processing_cost(10.0, 0.1, 1.0), 10.0);
        // P_d = 0: every chunk only tests → cost λC.
        assert_eq!(average_processing_cost(10.0, 0.1, 0.0), 1.0);
        // Monotone in P_d for λ < 1.
        assert!(
            average_processing_cost(10.0, 0.1, 0.5) < average_processing_cost(10.0, 0.1, 0.9)
        );
    }
}
