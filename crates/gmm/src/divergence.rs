//! Divergences between mixtures.
//!
//! Gaussian mixtures admit no closed-form KL divergence, so these are
//! Monte-Carlo estimators with deterministic seeds. They quantify model
//! agreement in the experiments (e.g. tree-network root vs flat
//! coordinator) and back the accuracy-loss analysis of merges: the L1
//! distance here is the same functional the paper's `l(x)` integrates.

use crate::Mixture;
use cludistream_rng::StdRng;

/// Monte-Carlo estimate of `KL(p ‖ q) = E_p[log p(x) − log q(x)]` from
/// `samples` draws of `p`. Non-negative in expectation; individual
/// estimates may dip slightly below zero.
pub fn kl_divergence_mc(p: &Mixture, q: &Mixture, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(p.dim(), q.dim(), "dimension mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = (0..samples)
        .map(|_| {
            let x = p.sample(&mut rng);
            p.log_pdf(&x) - q.log_pdf(&x)
        })
        .sum();
    total / samples as f64
}

/// Monte-Carlo estimate of the L1 distance `∫ |p(x) − q(x)| dx` using the
/// balanced proposal `m = ½(p + q)`:
/// `∫|p−q| = E_m[|p(x) − q(x)| / m(x)]`. Lies in `[0, 2]`.
pub fn l1_distance_mc(p: &Mixture, q: &Mixture, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(p.dim(), q.dim(), "dimension mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = (0..samples)
        .map(|s| {
            // Alternate the proposal component deterministically.
            let x = if s % 2 == 0 { p.sample(&mut rng) } else { q.sample(&mut rng) };
            let (pp, qq) = (p.pdf(&x), q.pdf(&x));
            let m = 0.5 * (pp + qq);
            if m > 0.0 {
                (pp - qq).abs() / m
            } else {
                0.0
            }
        })
        .sum();
    total / samples as f64
}

/// Symmetrized Monte-Carlo KL: `½ KL(p‖q) + ½ KL(q‖p)`.
pub fn symmetric_kl_mc(p: &Mixture, q: &Mixture, samples: usize, seed: u64) -> f64 {
    0.5 * kl_divergence_mc(p, q, samples, seed)
        + 0.5 * kl_divergence_mc(q, p, samples, seed ^ 0x5EED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;
    use cludistream_linalg::Vector;

    fn blob(center: f64) -> Mixture {
        Mixture::single(Gaussian::spherical(Vector::from_slice(&[center]), 1.0).unwrap())
    }

    #[test]
    fn kl_of_identical_mixtures_is_zero() {
        let p = blob(0.0);
        let kl = kl_divergence_mc(&p, &p.clone(), 2000, 1);
        assert!(kl.abs() < 1e-9, "kl {kl}");
    }

    #[test]
    fn kl_matches_gaussian_closed_form() {
        // KL(N(0,1) ‖ N(m,1)) = m²/2.
        let p = blob(0.0);
        let q = blob(2.0);
        let kl = kl_divergence_mc(&p, &q, 50_000, 2);
        assert!((kl - 2.0).abs() < 0.15, "kl {kl} vs 2.0");
    }

    #[test]
    fn kl_is_asymmetric_but_symmetrized_is_not() {
        let p = Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[10.0]), 1.0).unwrap(),
            ],
            vec![0.9, 0.1],
        )
        .unwrap();
        let q = blob(0.0);
        let s_pq = symmetric_kl_mc(&p, &q, 20_000, 3);
        let s_qp = symmetric_kl_mc(&q, &p, 20_000, 3);
        assert!((s_pq - s_qp).abs() < 0.4 * s_pq.max(1.0), "{s_pq} vs {s_qp}");
        assert!(s_pq > 0.0);
    }

    #[test]
    fn l1_bounds() {
        let p = blob(0.0);
        // Identical: 0.
        assert!(l1_distance_mc(&p, &p.clone(), 5000, 4) < 1e-9);
        // Disjoint supports: → 2.
        let far = blob(1000.0);
        let l1 = l1_distance_mc(&p, &far, 5000, 5);
        assert!((l1 - 2.0).abs() < 0.05, "l1 {l1}");
        // Overlapping: strictly between.
        let near = blob(1.0);
        let mid = l1_distance_mc(&p, &near, 20_000, 6);
        assert!(mid > 0.2 && mid < 1.2, "l1 {mid}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = blob(0.0);
        let q = blob(1.0);
        assert_eq!(kl_divergence_mc(&p, &q, 100, 7), kl_divergence_mc(&p, &q, 100, 7));
        assert_eq!(l1_distance_mc(&p, &q, 100, 8), l1_distance_mc(&p, &q, 100, 8));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let p = blob(0.0);
        let q = Mixture::single(Gaussian::spherical(Vector::zeros(2), 1.0).unwrap());
        let _ = kl_divergence_mc(&p, &q, 10, 9);
    }
}
