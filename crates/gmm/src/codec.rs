//! Binary wire format for model synopses.
//!
//! The communication-cost experiments (paper Sec. 5.3 and Fig. 2) measure
//! *bytes transmitted*, so the codec is explicit about every byte: a mixture
//! synopsis is a fixed header plus `K` weights, `K` means and `K`
//! covariances. For [`CovarianceType::Diagonal`] only the diagonal is
//! transmitted — the d-vector representation Theorem 3 mentions — making the
//! encoding lossy for non-diagonal models.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u8  covariance tag (0 = full, 1 = diagonal)
//! u32 K   u32 d
//! K × f64             weights
//! K × d × f64         means
//! K × (d² | d) × f64  covariances (row-major for full)
//! ```

use crate::{CovarianceType, Gaussian, GmmError, Mixture, Result};
use cludistream_wire::{ByteBuf, ByteReader};
use cludistream_linalg::{Matrix, Vector};

const TAG_FULL: u8 = 0;
const TAG_DIAGONAL: u8 = 1;

/// Exact encoded size in bytes of a K-component, d-dimensional mixture
/// synopsis under the given covariance representation.
///
/// This is the `K(d² + d + 1)` of the paper's Theorem 3 (in f64 units), plus
/// the 9-byte header.
pub fn encoded_len(k: usize, d: usize, cov: CovarianceType) -> usize {
    1 + 4 + 4 + 8 * k * (1 + d + cov.param_count(d))
}

/// Encodes a mixture into a fresh buffer.
pub fn encode_mixture(mixture: &Mixture, cov: CovarianceType) -> ByteBuf {
    let (k, d) = (mixture.k(), mixture.dim());
    let mut buf = ByteBuf::with_capacity(encoded_len(k, d, cov));
    buf.put_u8(match cov {
        CovarianceType::Full => TAG_FULL,
        CovarianceType::Diagonal => TAG_DIAGONAL,
    });
    buf.put_u32_le(k as u32);
    buf.put_u32_le(d as u32);
    for &w in mixture.weights() {
        buf.put_f64_le(w);
    }
    for c in mixture.components() {
        for &m in c.mean().as_slice() {
            buf.put_f64_le(m);
        }
    }
    for c in mixture.components() {
        match cov {
            CovarianceType::Full => {
                for &v in c.cov().as_slice() {
                    buf.put_f64_le(v);
                }
            }
            CovarianceType::Diagonal => {
                for v in c.cov().diag() {
                    buf.put_f64_le(v);
                }
            }
        }
    }
    buf
}

/// Decodes a mixture from a buffer produced by [`encode_mixture`].
pub fn decode_mixture(buf: &mut ByteReader<'_>) -> Result<Mixture> {
    if buf.remaining() < 9 {
        return Err(GmmError::Codec("truncated header"));
    }
    let tag = buf.get_u8();
    let cov = match tag {
        TAG_FULL => CovarianceType::Full,
        TAG_DIAGONAL => CovarianceType::Diagonal,
        _ => return Err(GmmError::Codec("unknown covariance tag")),
    };
    let k = buf.get_u32_le() as usize;
    let d = buf.get_u32_le() as usize;
    if k == 0 || d == 0 {
        return Err(GmmError::Codec("zero K or d"));
    }
    let body = 8 * k * (1 + d + cov.param_count(d));
    if buf.remaining() < body {
        return Err(GmmError::Codec("truncated body"));
    }
    let mut weights = Vec::with_capacity(k);
    for _ in 0..k {
        weights.push(buf.get_f64_le());
    }
    let mut means = Vec::with_capacity(k);
    for _ in 0..k {
        let m: Vector = (0..d).map(|_| buf.get_f64_le()).collect();
        means.push(m);
    }
    let mut comps = Vec::with_capacity(k);
    for mean in means {
        let cov_matrix = match cov {
            CovarianceType::Full => {
                let data: Vec<f64> = (0..d * d).map(|_| buf.get_f64_le()).collect();
                Matrix::from_vec(d, d, data)
            }
            CovarianceType::Diagonal => {
                let diag: Vec<f64> = (0..d).map(|_| buf.get_f64_le()).collect();
                Matrix::from_diag(&diag)
            }
        };
        comps.push(Gaussian::new(mean, cov_matrix)?);
    }
    Mixture::new(comps, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mixture() -> Mixture {
        Mixture::new(
            vec![
                Gaussian::new(
                    Vector::from_slice(&[1.0, 2.0]),
                    Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]),
                )
                .unwrap(),
                Gaussian::spherical(Vector::from_slice(&[-3.0, 4.0]), 0.5).unwrap(),
            ],
            vec![0.4, 0.6],
        )
        .unwrap()
    }

    #[test]
    fn full_roundtrip_is_exact() {
        let m = sample_mixture();
        let bytes = encode_mixture(&m, CovarianceType::Full);
        assert_eq!(bytes.len(), encoded_len(2, 2, CovarianceType::Full));
        let back = decode_mixture(&mut bytes.reader()).unwrap();
        assert_eq!(back.k(), 2);
        assert_eq!(back.dim(), 2);
        for i in 0..2 {
            assert!((back.weights()[i] - m.weights()[i]).abs() < 1e-15);
            let (a, b) = (&back.components()[i], &m.components()[i]);
            assert_eq!(a.mean(), b.mean());
            assert_eq!(a.cov().as_slice(), b.cov().as_slice());
        }
    }

    #[test]
    fn diagonal_roundtrip_keeps_diagonal_only() {
        let m = sample_mixture();
        let bytes = encode_mixture(&m, CovarianceType::Diagonal);
        assert_eq!(bytes.len(), encoded_len(2, 2, CovarianceType::Diagonal));
        let back = decode_mixture(&mut bytes.reader()).unwrap();
        let c = back.components()[0].cov();
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 0.0); // off-diagonal dropped
    }

    #[test]
    fn diagonal_is_smaller_than_full() {
        assert!(
            encoded_len(5, 4, CovarianceType::Diagonal) < encoded_len(5, 4, CovarianceType::Full)
        );
    }

    #[test]
    fn encoded_len_matches_theorem3_accounting() {
        // K(d² + d + 1) f64 values + 9-byte header.
        let (k, d) = (5, 4);
        assert_eq!(
            encoded_len(k, d, CovarianceType::Full),
            9 + 8 * k * (d * d + d + 1)
        );
    }

    #[test]
    fn truncated_buffers_rejected() {
        let m = sample_mixture();
        let bytes = encode_mixture(&m, CovarianceType::Full);
        for cut in [0, 5, 9, bytes.len() - 1] {
            let slice = bytes.slice(..cut);
            assert!(decode_mixture(&mut slice.reader()).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = ByteBuf::new();
        buf.put_u8(99);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        for _ in 0..3 {
            buf.put_f64_le(1.0);
        }
        assert!(matches!(
            decode_mixture(&mut buf.reader()),
            Err(GmmError::Codec("unknown covariance tag"))
        ));
    }

    #[test]
    fn zero_k_rejected() {
        let mut buf = ByteBuf::new();
        buf.put_u8(TAG_FULL);
        buf.put_u32_le(0);
        buf.put_u32_le(2);
        assert!(decode_mixture(&mut buf.reader()).is_err());
    }

    #[test]
    fn corrupt_covariance_rejected() {
        // A negative-definite covariance in the payload must be caught by
        // Gaussian validation (after ridge attempts fail) or accepted with a
        // ridge; NaN must always be rejected.
        let m = sample_mixture();
        let mut raw = encode_mixture(&m, CovarianceType::Full);
        let len = raw.len();
        // Overwrite the last f64 (a covariance entry) with NaN.
        raw[len - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_mixture(&mut raw.reader()).is_err());
    }
}
