#![warn(missing_docs)]

//! Gaussian mixture modelling substrate for the CluDistream reproduction.
//!
//! Implements Section 3 of the paper (Gaussian mixture model, classical EM)
//! plus the supporting pieces its algorithms need:
//!
//! - [`Gaussian`] — a d-dimensional Gaussian with a cached Cholesky factor,
//!   log-density evaluation and sampling.
//! - [`Mixture`] — a weighted Gaussian mixture: densities, posteriors
//!   (Eq. 2), average log likelihood (Definition 1), moment-preserving
//!   component merges, and aggregate mean/covariance (used by the
//!   coordinator's split criterion).
//! - [`EmConfig`] / [`fit_em`] — the classical EM algorithm of Sec. 3.2 in
//!   the log domain, with k-means++ initialization and ridge-regularized
//!   covariance estimation.
//! - [`SuffStats`] — weighted Gaussian sufficient statistics `(n, Σx,
//!   Σxxᵀ)`; the currency of model merging without raw-data transmission.
//! - [`chunk_size`] — the paper's Theorem 1 chunk size
//!   `M = ⌈-2d ln(δ(2-δ))/ε⌉`.
//! - [`codec`] — an explicit binary wire format for model synopses, so the
//!   communication-cost experiments measure exact byte counts.
//!
//! # Example: fit a mixture and score a chunk
//!
//! ```
//! use cludistream_gmm::{fit_em, EmConfig};
//! use cludistream_linalg::Vector;
//!
//! // Two well-separated 1-d blobs.
//! let data: Vec<Vector> = (0..100)
//!     .map(|i| {
//!         let base = if i % 2 == 0 { 0.0 } else { 10.0 };
//!         Vector::from_slice(&[base + (i % 7) as f64 * 0.01])
//!     })
//!     .collect();
//! let fit = fit_em(&data, &EmConfig { k: 2, seed: 42, ..Default::default() }).unwrap();
//! assert_eq!(fit.mixture.k(), 2);
//! assert!(fit.avg_log_likelihood.is_finite());
//! ```

mod batch;
pub mod chunk;
pub mod codec;
mod covariance;
pub mod divergence;
mod em;
mod error;
mod gaussian;
mod kmeans;
mod likelihood;
pub mod metrics;
mod mixture;
mod model_selection;
mod scoring;
mod suffstats;

pub use batch::{Batch, DensityScratch, MixtureScratch, BLOCK};
pub use chunk::{chunk_size, ChunkParams};
pub use covariance::CovarianceType;
pub use em::{
    fit_em, fit_em_recorded, fit_em_warm, fit_em_warm_recorded, EmConfig, EmFit, InitMethod,
};
pub use error::GmmError;
pub use gaussian::{sample_standard_normal, Gaussian};
pub use kmeans::{kmeans, KMeansConfig, KMeansFit};
pub use likelihood::{
    avg_log_likelihood, fit_tolerance, free_parameters, j_fit, log_likelihood_std,
    sharpened_avg_log_likelihood, standard_normal_quantile,
};
pub use mixture::Mixture;
pub use model_selection::{bic, fit_em_bic, ScoredFit};
pub use scoring::{score, score_record, Scores};
pub use suffstats::SuffStats;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GmmError>;

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns `-inf` for an empty slice (the log of an empty sum).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // All -inf (or empty): the sum is 0 → log 0 = -inf. A +inf input
        // propagates as +inf.
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_when_safe() {
        let xs = [0.1, -0.5, 1.3];
        let naive = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_large_magnitudes() {
        let xs = [-1000.0, -1001.0];
        let got = log_sum_exp(&xs);
        // log(e^-1000 + e^-1001) = -1000 + log(1 + e^-1) ≈ -999.6867
        assert!((got - (-1000.0 + (1.0 + (-1.0f64).exp()).ln())).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_all_neg_inf() {
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_single_element() {
        assert_eq!(log_sum_exp(&[3.5]), 3.5);
    }
}
