use cludistream_linalg::LinalgError;
use std::fmt;

/// Errors produced by the mixture-model machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum GmmError {
    /// A linear-algebra kernel failed (typically a degenerate covariance).
    Linalg(LinalgError),
    /// The training data was empty or smaller than the component count.
    NotEnoughData {
        /// Records available.
        have: usize,
        /// Records required.
        need: usize,
    },
    /// Records of differing dimensionality were mixed.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality encountered.
        got: usize,
    },
    /// A configuration parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// Mixture weights were invalid (negative, non-finite, or zero-sum).
    InvalidWeights,
    /// A decode operation hit a malformed or truncated buffer.
    Codec(&'static str),
}

impl fmt::Display for GmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmmError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            GmmError::NotEnoughData { have, need } => {
                write!(f, "not enough data: have {have} records, need at least {need}")
            }
            GmmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            GmmError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: must satisfy {constraint}")
            }
            GmmError::InvalidWeights => write!(f, "mixture weights are invalid"),
            GmmError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for GmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GmmError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GmmError {
    fn from(e: LinalgError) -> Self {
        GmmError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GmmError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
        let e = GmmError::NotEnoughData { have: 1, need: 5 };
        assert!(e.to_string().contains("need at least 5"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
