use crate::{Gaussian, GmmError, Result};
use cludistream_linalg::{Matrix, Vector};

/// Weighted Gaussian sufficient statistics: `(n, Σ w x, Σ w x xᵀ)`.
///
/// Sufficient statistics are the synopsis currency of the whole system: the
/// SEM baseline compresses raw records into them, and the coordinator merges
/// remote models by converting each component back into statistics weighted
/// by its record counter — no raw data ever crosses the network, as the
/// paper requires.
#[derive(Debug, Clone)]
pub struct SuffStats {
    /// Total weight (record count for unweighted data).
    n: f64,
    /// Weighted sum of records.
    sum: Vector,
    /// Weighted sum of outer products `Σ w x xᵀ`.
    scatter: Matrix,
}

impl SuffStats {
    /// Creates empty statistics for dimension `d`.
    pub fn new(d: usize) -> Self {
        SuffStats { n: 0.0, sum: Vector::zeros(d), scatter: Matrix::zeros(d, d) }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.sum.dim()
    }

    /// Total accumulated weight.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0.0
    }

    /// Accumulates one record with the given weight (a membership
    /// probability in EM, 1.0 for plain counting).
    pub fn add(&mut self, x: &Vector, weight: f64) {
        self.add_slice(x.as_slice(), weight);
    }

    /// [`Self::add`] over a raw row slice — the accumulation path of the
    /// batched E-step, which reads records out of a flat SoA buffer.
    /// Identical arithmetic (and arithmetic order) to `add`.
    pub fn add_slice(&mut self, x: &[f64], weight: f64) {
        debug_assert_eq!(x.len(), self.dim(), "suffstats add: dimension mismatch");
        self.n += weight;
        self.sum.axpy_slice(weight, x);
        self.scatter.rank1_update_slice(weight, x);
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &SuffStats) {
        assert_eq!(self.dim(), other.dim(), "suffstats merge: dimension mismatch");
        self.n += other.n;
        self.sum += &other.sum;
        self.scatter += &other.scatter;
    }

    /// Removes another set of statistics (sliding-window deletion). The
    /// caller is responsible for only subtracting statistics that were
    /// previously merged.
    pub fn unmerge(&mut self, other: &SuffStats) {
        assert_eq!(self.dim(), other.dim(), "suffstats unmerge: dimension mismatch");
        self.n -= other.n;
        self.sum -= &other.sum;
        self.scatter -= &other.scatter;
    }

    /// Weighted mean `Σwx / n`. Errors when empty.
    pub fn mean(&self) -> Result<Vector> {
        if self.n <= 0.0 {
            return Err(GmmError::NotEnoughData { have: 0, need: 1 });
        }
        Ok(self.sum.scaled(1.0 / self.n))
    }

    /// Maximum-likelihood covariance `Σwxxᵀ/n − μμᵀ` (biased, matching the
    /// paper's M-step). Errors when empty.
    pub fn cov(&self) -> Result<Matrix> {
        let mu = self.mean()?;
        let mut cov = self.scatter.scaled(1.0 / self.n);
        cov.rank1_update(-1.0, &mu);
        cov.symmetrize();
        Ok(cov)
    }

    /// Converts to a Gaussian plus its weight. Degenerate covariances are
    /// ridge-regularized by the [`Gaussian`] constructor.
    pub fn to_gaussian(&self) -> Result<(Gaussian, f64)> {
        Ok((Gaussian::new(self.mean()?, self.cov()?)?, self.n))
    }

    /// Returns the statistics scaled by `r` — the statistics the same data
    /// would produce if every record's weight were multiplied by `r`
    /// (all three fields are linear in the weights). Used when a block of
    /// statistics is split across mixture components by responsibility.
    pub fn scaled(&self, r: f64) -> SuffStats {
        SuffStats { n: self.n * r, sum: self.sum.scaled(r), scatter: self.scatter.scaled(r) }
    }

    /// Reconstructs the statistics a Gaussian would have produced from `n`
    /// records: `sum = n μ`, `scatter = n (Σ + μμᵀ)`.
    pub fn from_gaussian(g: &Gaussian, n: f64) -> Self {
        let mu = g.mean();
        let sum = mu.scaled(n);
        let mut scatter = g.cov().scaled(n);
        scatter.rank1_update(n, mu);
        SuffStats { n, sum, scatter }
    }

    /// Bytes needed to represent these statistics (for synopsis size
    /// accounting): n + d values + d×d matrix, 8 bytes each.
    pub fn synopsis_bytes(&self) -> usize {
        let d = self.dim();
        8 * (1 + d + d * d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(data: &[&[f64]]) -> SuffStats {
        let mut s = SuffStats::new(data[0].len());
        for row in data {
            s.add(&Vector::from_slice(row), 1.0);
        }
        s
    }

    #[test]
    fn mean_and_cov_match_direct_computation() {
        let s = stats_of(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 0.0]]);
        let mean = s.mean().unwrap();
        assert!((mean[0] - 3.0).abs() < 1e-12);
        assert!((mean[1] - 2.0).abs() < 1e-12);
        let cov = s.cov().unwrap();
        // var(x) = ((1-3)²+(3-3)²+(5-3)²)/3 = 8/3
        assert!((cov[(0, 0)] - 8.0 / 3.0).abs() < 1e-12);
        // cov(x,y) = ((-2)(0) + 0*2 + 2*(-2))/3 = -4/3
        assert!((cov[(0, 1)] + 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_accumulation() {
        let mut s = SuffStats::new(1);
        s.add(&Vector::from_slice(&[2.0]), 3.0);
        s.add(&Vector::from_slice(&[6.0]), 1.0);
        assert_eq!(s.n(), 4.0);
        assert!((s.mean().unwrap()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let a = stats_of(&[&[1.0], &[2.0]]);
        let b = stats_of(&[&[3.0], &[4.0]]);
        let mut merged = a.clone();
        merged.merge(&b);
        let joint = stats_of(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        assert_eq!(merged.n(), joint.n());
        assert!((merged.mean().unwrap()[0] - joint.mean().unwrap()[0]).abs() < 1e-12);
        assert!((merged.cov().unwrap()[(0, 0)] - joint.cov().unwrap()[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn unmerge_reverses_merge() {
        let a = stats_of(&[&[1.0], &[5.0]]);
        let b = stats_of(&[&[2.0], &[8.0]]);
        let mut s = a.clone();
        s.merge(&b);
        s.unmerge(&b);
        assert!((s.n() - a.n()).abs() < 1e-12);
        assert!((s.mean().unwrap()[0] - a.mean().unwrap()[0]).abs() < 1e-12);
    }

    #[test]
    fn gaussian_roundtrip() {
        let s = stats_of(&[&[1.0, 0.0], &[2.0, 1.0], &[0.0, 2.0], &[3.0, 3.0]]);
        let (g, n) = s.to_gaussian().unwrap();
        assert_eq!(n, 4.0);
        let back = SuffStats::from_gaussian(&g, n);
        assert!((back.mean().unwrap()[0] - s.mean().unwrap()[0]).abs() < 1e-10);
        let (c1, c2) = (back.cov().unwrap(), s.cov().unwrap());
        for i in 0..2 {
            for j in 0..2 {
                assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-8, "cov ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_stats_error() {
        let s = SuffStats::new(2);
        assert!(s.is_empty());
        assert!(s.mean().is_err());
        assert!(s.cov().is_err());
        assert!(s.to_gaussian().is_err());
    }

    #[test]
    fn scaled_preserves_moments() {
        let s = stats_of(&[&[1.0, 2.0], &[3.0, 0.0]]);
        let half = s.scaled(0.5);
        assert_eq!(half.n(), 1.0);
        // Mean and covariance are weight-invariant.
        assert!((half.mean().unwrap()[0] - s.mean().unwrap()[0]).abs() < 1e-12);
        assert!((half.cov().unwrap()[(0, 1)] - s.cov().unwrap()[(0, 1)]).abs() < 1e-12);
        // Scaling by halves and merging reproduces the original.
        let mut back = s.scaled(0.5);
        back.merge(&half);
        assert!((back.n() - s.n()).abs() < 1e-12);
    }

    #[test]
    fn synopsis_bytes_formula() {
        let s = SuffStats::new(4);
        assert_eq!(s.synopsis_bytes(), 8 * (1 + 4 + 16));
    }

    #[test]
    fn single_point_cov_is_degenerate_but_gaussian_recovers() {
        let s = stats_of(&[&[1.0, 2.0]]);
        let cov = s.cov().unwrap();
        assert!(cov.frobenius_norm() < 1e-12);
        // to_gaussian must ridge it rather than fail.
        let (g, _) = s.to_gaussian().unwrap();
        assert!(g.ridge() > 0.0);
    }
}
