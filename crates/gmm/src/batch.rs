//! Structure-of-arrays batch layout and batched density kernels.
//!
//! EM scores every record against every component once per iteration. The
//! per-record path ([`crate::Gaussian::log_pdf`]) chases `Vector` allocations
//! scattered across the heap and builds a fresh terms buffer for every
//! record; the kernels here instead flatten a chunk into one contiguous
//! row-major buffer ([`Batch`]) and score [`BLOCK`]-sized row blocks at a
//! time against all components, reusing caller-owned scratch buffers
//! ([`MixtureScratch`]) across blocks and iterations.
//!
//! # Bit-identity contract
//!
//! For every record the batched kernels perform the same floating-point
//! operations in the same order as the scalar path, so
//! [`crate::Gaussian::log_pdf_batch`] and [`Mixture::log_pdf_batch`] are
//! bit-identical to per-record [`crate::Gaussian::log_pdf`] /
//! [`Mixture::log_pdf`]: the block structure changes memory layout and
//! amortizes passes over the Cholesky factor, never the arithmetic.
//! The EM engine builds on this to keep its fitted models independent of
//! both batching and thread count.

use crate::{log_sum_exp, Mixture};
use cludistream_linalg::Vector;

/// Number of records a batch kernel scores per block.
///
/// The block size is part of the *semantics* of the data-parallel EM
/// engine, not just a tuning knob: per-block sufficient statistics are
/// reduced in block order, so changing `BLOCK` changes the reduction tree
/// (and thus low-order bits of fitted models), while changing the thread
/// count never does. 256 rows keep the dimension-major solve buffer
/// (`d × BLOCK` doubles) comfortably inside L1/L2 for the dimensions the
/// paper's experiments use.
pub const BLOCK: usize = 256;

/// A contiguous, row-major (record-major) copy of a record slice: record
/// `i` occupies `data[i*d .. (i+1)*d]`.
///
/// Built once per chunk/fit and indexed by the batch kernels; the
/// original `Vec<Vector>` stays the API currency everywhere else.
#[derive(Debug, Clone)]
pub struct Batch {
    data: Vec<f64>,
    n: usize,
    d: usize,
}

impl Batch {
    /// Flattens `records` into one contiguous buffer. Panics when records
    /// disagree on dimensionality. An empty slice yields an empty batch
    /// with dimension 0.
    pub fn from_records(records: &[Vector]) -> Batch {
        let d = records.first().map_or(0, |r| r.dim());
        let mut data = Vec::with_capacity(records.len() * d);
        for r in records {
            assert_eq!(r.dim(), d, "Batch::from_records: ragged record dimensions");
            data.extend_from_slice(r.as_slice());
        }
        Batch { data, n: records.len(), d }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Record dimensionality (0 for an empty batch).
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The whole flat buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat sub-buffer holding `count` records starting at `start`.
    pub fn rows(&self, start: usize, count: usize) -> &[f64] {
        &self.data[start * self.d..(start + count) * self.d]
    }

    /// One record as a row slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }
}

/// Reusable workspace for [`crate::Gaussian::log_pdf_batch`] (the dense-covariance
/// path's dimension-major solve buffer). Default-constructed empty; grows
/// to the largest block it has seen and is never shrunk.
#[derive(Debug, Default)]
pub struct DensityScratch {
    solve: Vec<f64>,
}

impl DensityScratch {
    /// Returns a buffer of exactly `len` elements, reusing the allocation.
    /// Contents are unspecified; callers overwrite every element.
    pub(crate) fn buf(&mut self, len: usize) -> &mut [f64] {
        if self.solve.len() < len {
            self.solve.resize(len, 0.0);
        }
        &mut self.solve[..len]
    }
}

/// Reusable workspace for the [`Mixture`] batch kernels: the `k × count`
/// weighted log-density table, a `k`-element gather buffer, and the
/// per-Gaussian [`DensityScratch`]. One per worker thread in the parallel
/// E-step; buffers never cross threads.
#[derive(Debug, Default)]
pub struct MixtureScratch {
    /// Component-major table: `weighted[j*count + b] = ln w_j + ln p(x_b|j)`.
    pub(crate) weighted: Vec<f64>,
    /// Per-record gather buffer of `k` terms for log-sum-exp.
    pub(crate) terms: Vec<f64>,
    /// Solve buffer shared by all components' density evaluations.
    pub(crate) density: DensityScratch,
}

impl Mixture {
    /// Fills `scratch.weighted` with the component-major weighted
    /// log-density table for a block: `weighted[j*count + b] = ln w_j +
    /// ln p(x_b | j)`, where `rows` holds `count` row-major records.
    ///
    /// Each entry is the exact term the scalar [`Mixture::log_pdf`] /
    /// posterior path computes (`lw + c.log_pdf(x)`, one addition), so
    /// downstream consumers that gather per-record columns in component
    /// order reproduce the scalar arithmetic bit for bit.
    pub(crate) fn weighted_log_density_block(
        &self,
        rows: &[f64],
        count: usize,
        scratch: &mut MixtureScratch,
    ) {
        let k = self.k();
        debug_assert_eq!(rows.len(), count * self.dim());
        if scratch.weighted.len() < k * count {
            scratch.weighted.resize(k * count, 0.0);
        }
        for (j, (c, &lw)) in self.components().iter().zip(self.log_weights()).enumerate() {
            let out = &mut scratch.weighted[j * count..(j + 1) * count];
            c.log_pdf_batch(rows, out, &mut scratch.density);
            for t in out.iter_mut() {
                *t = lw + *t;
            }
        }
    }

    /// Batched [`Mixture::log_pdf`]: writes `out[b] = ln p(x_b)` for the
    /// `out.len()` row-major records in `rows`. Bit-identical to calling
    /// `log_pdf` on each record.
    pub fn log_pdf_batch(&self, rows: &[f64], out: &mut [f64], scratch: &mut MixtureScratch) {
        let count = out.len();
        assert_eq!(rows.len(), count * self.dim(), "log_pdf_batch: rows/out length mismatch");
        self.weighted_log_density_block(rows, count, scratch);
        let k = self.k();
        scratch.terms.resize(k, 0.0);
        for (b, o) in out.iter_mut().enumerate() {
            for j in 0..k {
                scratch.terms[j] = scratch.weighted[j * count + b];
            }
            *o = log_sum_exp(&scratch.terms);
        }
    }

    /// Average log likelihood (Definition 1) of a pre-flattened batch,
    /// evaluated [`BLOCK`] records at a time. Bit-identical to
    /// [`Mixture::avg_log_likelihood`] on the same records: the per-record
    /// log densities are bit-identical and the sum is accumulated in the
    /// same flat record order. Returns `-inf` on an empty batch.
    pub fn avg_log_likelihood_batch(&self, batch: &Batch, scratch: &mut MixtureScratch) -> f64 {
        if batch.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut out = [0.0f64; BLOCK];
        let mut total = 0.0;
        let mut start = 0;
        while start < batch.len() {
            let count = BLOCK.min(batch.len() - start);
            self.log_pdf_batch(batch.rows(start, count), &mut out[..count], scratch);
            for &v in &out[..count] {
                total += v;
            }
            start += count;
        }
        total / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;
    use cludistream_linalg::Matrix;
    use cludistream_rng::{Rng, StdRng};

    fn random_records(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vector> {
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect())
            .collect()
    }

    fn dense_gaussian(d: usize) -> Gaussian {
        // Diagonally dominant SPD with nonzero off-diagonals so the dense
        // Cholesky path (not the diagonal fast path) is exercised.
        let mut cov = Matrix::identity(d);
        for i in 0..d {
            cov[(i, i)] = 1.5 + i as f64 * 0.25;
            for j in 0..d {
                if i != j {
                    cov[(i, j)] = 0.1 / (1.0 + (i as f64 - j as f64).abs());
                }
            }
        }
        let mean: Vector = (0..d).map(|i| i as f64 * 0.5 - 1.0).collect();
        Gaussian::new(mean, cov).unwrap()
    }

    #[test]
    fn batch_layout_roundtrips() {
        let recs = vec![
            Vector::from_slice(&[1.0, 2.0]),
            Vector::from_slice(&[3.0, 4.0]),
            Vector::from_slice(&[5.0, 6.0]),
        ];
        let b = Batch::from_records(&recs);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.row(1), &[3.0, 4.0]);
        assert_eq!(b.rows(1, 2), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_batch() {
        let b = Batch::from_records(&[]);
        assert!(b.is_empty());
        assert_eq!(b.dim(), 0);
        assert_eq!(b.len(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged record dimensions")]
    fn ragged_records_rejected() {
        let _ = Batch::from_records(&[Vector::zeros(2), Vector::zeros(3)]);
    }

    #[test]
    fn gaussian_batch_bit_identical_dense() {
        let g = dense_gaussian(5);
        assert!(!g.is_diagonal());
        let mut rng = StdRng::seed_from_u64(41);
        let recs = random_records(&mut rng, 100, 5);
        let batch = Batch::from_records(&recs);
        let mut scratch = DensityScratch::default();
        let mut out = vec![0.0; recs.len()];
        g.log_pdf_batch(batch.as_slice(), &mut out, &mut scratch);
        for (x, got) in recs.iter().zip(&out) {
            assert_eq!(got.to_bits(), g.log_pdf(x).to_bits());
        }
    }

    #[test]
    fn gaussian_batch_bit_identical_diagonal() {
        let g = Gaussian::diagonal(
            Vector::from_slice(&[0.5, -1.5, 2.0]),
            &[0.25, 4.0, 1.0],
        )
        .unwrap();
        assert!(g.is_diagonal());
        let mut rng = StdRng::seed_from_u64(42);
        let recs = random_records(&mut rng, 64, 3);
        let batch = Batch::from_records(&recs);
        let mut scratch = DensityScratch::default();
        let mut out = vec![0.0; recs.len()];
        g.log_pdf_batch(batch.as_slice(), &mut out, &mut scratch);
        for (x, got) in recs.iter().zip(&out) {
            assert_eq!(got.to_bits(), g.log_pdf(x).to_bits());
        }
    }

    #[test]
    fn gaussian_batch_close_to_scalar_tolerance() {
        // The satellite acceptance check phrased as a tolerance: even if
        // the bit-identity contract were relaxed, agreement must hold to
        // 1e-12.
        let g = dense_gaussian(8);
        let mut rng = StdRng::seed_from_u64(43);
        let recs = random_records(&mut rng, 300, 8);
        let batch = Batch::from_records(&recs);
        let mut scratch = DensityScratch::default();
        let mut out = vec![0.0; recs.len()];
        g.log_pdf_batch(batch.as_slice(), &mut out, &mut scratch);
        for (x, got) in recs.iter().zip(&out) {
            assert!((got - g.log_pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn mixture_batch_bit_identical() {
        let mix = Mixture::new(
            vec![
                dense_gaussian(4),
                Gaussian::diagonal(Vector::zeros(4), &[1.0, 2.0, 0.5, 3.0]).unwrap(),
                Gaussian::spherical(Vector::filled(4, 2.0), 1.5).unwrap(),
            ],
            vec![0.5, 0.3, 0.2],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let recs = random_records(&mut rng, 200, 4);
        let batch = Batch::from_records(&recs);
        let mut scratch = MixtureScratch::default();
        let mut out = vec![0.0; recs.len()];
        mix.log_pdf_batch(batch.as_slice(), &mut out, &mut scratch);
        for (x, got) in recs.iter().zip(&out) {
            assert_eq!(got.to_bits(), mix.log_pdf(x).to_bits());
        }
    }

    #[test]
    fn avg_log_likelihood_batch_matches_scalar_across_block_boundary() {
        let mix = Mixture::new(
            vec![dense_gaussian(3), Gaussian::spherical(Vector::zeros(3), 2.0).unwrap()],
            vec![0.4, 0.6],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(45);
        // Spans multiple blocks with a ragged tail (BLOCK=256).
        for n in [1usize, BLOCK - 1, BLOCK, BLOCK + 1, 2 * BLOCK + 17] {
            let recs = random_records(&mut rng, n, 3);
            let batch = Batch::from_records(&recs);
            let mut scratch = MixtureScratch::default();
            let got = mix.avg_log_likelihood_batch(&batch, &mut scratch);
            assert_eq!(got.to_bits(), mix.avg_log_likelihood(&recs).to_bits(), "n={n}");
        }
    }

    #[test]
    fn avg_log_likelihood_batch_empty_is_neg_inf() {
        let mix = Mixture::single(Gaussian::spherical(Vector::zeros(1), 1.0).unwrap());
        let batch = Batch::from_records(&[]);
        let mut scratch = MixtureScratch::default();
        assert_eq!(mix.avg_log_likelihood_batch(&batch, &mut scratch), f64::NEG_INFINITY);
    }

    #[test]
    fn scratch_reuse_across_different_sizes() {
        let g = dense_gaussian(4);
        let mut rng = StdRng::seed_from_u64(46);
        let mut scratch = DensityScratch::default();
        // Large block first, then small: the reused (larger) buffer must
        // not perturb the small block's results.
        for n in [100usize, 3, 50, 1] {
            let recs = random_records(&mut rng, n, 4);
            let batch = Batch::from_records(&recs);
            let mut out = vec![0.0; n];
            g.log_pdf_batch(batch.as_slice(), &mut out, &mut scratch);
            for (x, got) in recs.iter().zip(&out) {
                assert_eq!(got.to_bits(), g.log_pdf(x).to_bits());
            }
        }
    }
}
