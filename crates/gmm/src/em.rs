use crate::{
    kmeans, log_sum_exp, Batch, CovarianceType, Gaussian, GmmError, KMeansConfig, Mixture,
    MixtureScratch, Result, SuffStats, BLOCK,
};
use cludistream_linalg::Vector;
use cludistream_obs::{em_cost_us, Event, NopRecorder, Recorder};
use cludistream_par::{par_block_map, resolve_workers};
use cludistream_rng::{Rng, StdRng};

/// How EM's initial mixture is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// Seed component means with k-means++ followed by a short Lloyd run;
    /// variances from the global covariance. The robust default.
    #[default]
    KMeansPlusPlus,
    /// Component means drawn uniformly from the data (Forgy); spherical
    /// covariances from the global variance.
    Forgy,
}

/// Configuration of the classical EM algorithm (paper Sec. 3.2).
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of mixture components K.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold ϖ on the *average* log-likelihood difference
    /// between consecutive iterations (the paper's `|Lᶦ − Lᶦ⁺¹| ≤ ϖ`,
    /// normalized by |D| so it is insensitive to chunk size). Zero
    /// disables early stopping (exactly `max_iters` iterations run).
    pub tol: f64,
    /// Covariance structure estimated in the M-step.
    pub covariance: CovarianceType,
    /// Initialization strategy.
    pub init: InitMethod,
    /// RNG seed for initialization.
    pub seed: u64,
    /// Floor on component responsibilities' total mass, as a fraction of
    /// |D|; components falling below are re-seeded from the lowest-density
    /// record to avoid starvation.
    pub min_weight: f64,
    /// Worker threads for the E-step: `1` (the default) scores blocks
    /// inline on the calling thread, `0` uses the machine's available
    /// parallelism, any other value spawns that many scoped workers.
    ///
    /// The fitted model is **bit-identical for every value**: the E-step
    /// always reduces per-[`BLOCK`] statistics in block order, and the
    /// thread count only decides which worker scores which blocks.
    pub threads: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            k: 5,
            max_iters: 100,
            tol: 1e-4,
            covariance: CovarianceType::Full,
            init: InitMethod::KMeansPlusPlus,
            seed: 0,
            min_weight: 1e-6,
            threads: 1,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// The learned mixture.
    pub mixture: Mixture,
    /// Total log likelihood `Σ_x ln p(x)` of the training chunk.
    pub log_likelihood: f64,
    /// Average log likelihood (Definition 1) — the `AvgPr₀` the
    /// test-and-cluster strategy compares future chunks against.
    pub avg_log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
    /// True when ϖ-convergence (not the iteration cap) stopped the loop.
    pub converged: bool,
}

/// Lightweight accumulator for diagonal-covariance EM: per-dimension sums
/// and sums of squares only — O(d) per record where full scatter is O(d²).
#[derive(Debug, Clone)]
struct DiagStats {
    n: f64,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl DiagStats {
    fn new(d: usize) -> Self {
        DiagStats { n: 0.0, sum: vec![0.0; d], sum_sq: vec![0.0; d] }
    }

    fn add_slice(&mut self, x: &[f64], w: f64) {
        self.n += w;
        for (i, (s, sq)) in self.sum.iter_mut().zip(self.sum_sq.iter_mut()).enumerate() {
            let v = x[i];
            *s += w * v;
            *sq += w * v * v;
        }
    }

    /// Merges another accumulator (block-order reduction of the parallel
    /// E-step).
    fn merge(&mut self, other: &DiagStats) {
        self.n += other.n;
        for (s, o) in self.sum.iter_mut().zip(&other.sum) {
            *s += o;
        }
        for (s, o) in self.sum_sq.iter_mut().zip(&other.sum_sq) {
            *s += o;
        }
    }

    /// Mean and per-dimension variance (ML, biased).
    fn moments(&self) -> (Vector, Vec<f64>) {
        let inv = 1.0 / self.n;
        let mean: Vector = self.sum.iter().map(|s| s * inv).collect();
        let vars: Vec<f64> = self
            .sum_sq
            .iter()
            .zip(mean.iter())
            .map(|(sq, m)| (sq * inv - m * m).max(0.0))
            .collect();
        (mean, vars)
    }
}

/// Fits a K-component Gaussian mixture to `data` with EM (paper Sec. 3.2).
///
/// The E-step computes membership probabilities `Pr(j|x)` in the log domain;
/// the M-step re-estimates `(w_j, μ_j, Σ_j)` from responsibility-weighted
/// sufficient statistics. Iteration stops when the average log likelihood
/// improves by less than `tol` or `max_iters` is reached.
pub fn fit_em(data: &[Vector], config: &EmConfig) -> Result<EmFit> {
    // Monomorphized against the no-op recorder: the telemetry calls in the
    // loop compile away entirely (the `noop_alloc` contract test and the
    // `obs` microbench group both pin this down).
    fit_em_impl(data, config, None, &NopRecorder)
}

/// [`fit_em`] with telemetry: per-iteration counters (`em.iterations`,
/// `em.fits`, `em.converged`/`em.iter_capped`), an `em.iters_per_fit`
/// histogram, and an [`Event::EmConverged`] journal event when
/// ϖ-convergence (not the iteration cap) stops the loop.
pub fn fit_em_recorded(
    data: &[Vector],
    config: &EmConfig,
    recorder: &(impl Recorder + ?Sized),
) -> Result<EmFit> {
    fit_em_impl(data, config, None, recorder)
}

/// Fits EM warm-started from `initial` instead of k-means++ — the
/// "update the current model" alternative to re-clustering from scratch.
/// `initial` must match the data's dimensionality; its component count
/// overrides `config.k`.
///
/// Warm starts converge in fewer iterations when the distribution drifted
/// mildly, but inherit the initial model's local optimum; the
/// `warm_vs_cold` ablation quantifies the trade-off.
pub fn fit_em_warm(data: &[Vector], initial: &Mixture, config: &EmConfig) -> Result<EmFit> {
    fit_em_warm_recorded(data, initial, config, &NopRecorder)
}

/// [`fit_em_warm`] with telemetry; see [`fit_em_recorded`].
pub fn fit_em_warm_recorded(
    data: &[Vector],
    initial: &Mixture,
    config: &EmConfig,
    recorder: &(impl Recorder + ?Sized),
) -> Result<EmFit> {
    if !data.is_empty() && data[0].dim() != initial.dim() {
        return Err(GmmError::DimensionMismatch { expected: initial.dim(), got: data[0].dim() });
    }
    let config = EmConfig { k: initial.k(), ..config.clone() };
    fit_em_impl(data, &config, Some(initial.clone()), recorder)
}

fn fit_em_impl(
    data: &[Vector],
    config: &EmConfig,
    warm: Option<Mixture>,
    recorder: &(impl Recorder + ?Sized),
) -> Result<EmFit> {
    if config.k == 0 {
        return Err(GmmError::InvalidParameter { name: "k", constraint: "k >= 1" });
    }
    if config.tol < 0.0 || !config.tol.is_finite() {
        return Err(GmmError::InvalidParameter { name: "tol", constraint: "tol >= 0" });
    }
    if data.len() < config.k {
        return Err(GmmError::NotEnoughData { have: data.len(), need: config.k });
    }
    let d = data[0].dim();
    for x in data {
        if x.dim() != d {
            return Err(GmmError::DimensionMismatch { expected: d, got: x.dim() });
        }
        if !x.is_finite() {
            return Err(GmmError::InvalidParameter {
                name: "data",
                constraint: "all records finite",
            });
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mixture = match warm {
        Some(m) => m,
        None => initialize(data, config, &mut rng)?,
    };

    // Global per-dimension variance, reused by every starvation rescue.
    let global_avg_var = {
        let mut global = SuffStats::new(d);
        for x in data {
            global.add(x, 1.0);
        }
        (global.cov()?.trace() / d as f64).max(1e-6)
    };

    let n = data.len() as f64;
    let mut prev_avg = f64::NEG_INFINITY;
    let mut log_likelihood = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    // SoA copy of the chunk, scored [`BLOCK`] records at a time. The block
    // partition — not the thread count — is the unit of reduction, so the
    // fitted model is bit-identical for every `config.threads` value.
    let batch = Batch::from_records(data);
    let blocks = data.len().div_ceil(BLOCK);
    let workers = resolve_workers(config.threads);
    let mut estep_blocks = 0u64;

    let diagonal = config.covariance == CovarianceType::Diagonal;
    for iter in 0..config.max_iters {
        iterations = iter + 1;

        // Fused E-step: each block is scored against the current mixture
        // with the batched density kernels, accumulating its own
        // responsibility-weighted sufficient statistics (per-dimension
        // moments in diagonal mode — O(d) per record — full scatter
        // otherwise) plus its log-likelihood contribution. Workers hand
        // blocks back in block order; the reduction below is a strict
        // left fold over that order, seeded with block 0's statistics.
        let results = par_block_map(blocks, workers, MixtureScratch::default, |scratch, b| {
            score_block(&mixture, &batch, b, config.k, diagonal, scratch)
        });
        estep_blocks += blocks as u64;
        let mut results = results.into_iter();
        let mut acc = results.next().expect("non-empty data yields at least one block");
        for r in results {
            acc.merge(&r);
        }

        log_likelihood = acc.ll;
        let avg = acc.ll / n;

        // ϖ-convergence on the average log likelihood. Strict comparison:
        // tol = 0 means "run max_iters" rather than stopping on an exact
        // floating-point plateau.
        let delta_ll = (avg - prev_avg).abs();
        if delta_ll < config.tol {
            converged = true;
            recorder.event(&Event::EmConverged { iters: iterations as u64, delta_ll });
            break;
        }
        prev_avg = avg;

        // M-step: rebuild the mixture from the statistics, rescuing starved
        // components. The re-seed target is the worst-explained record of a
        // bounded sample, located at most once per M-step — a full per-
        // component scan would dominate high-K/high-d fits.
        let mut worst_record: Option<Vector> = None;
        let mut comps = Vec::with_capacity(config.k);
        let mut weights = Vec::with_capacity(config.k);
        for j in 0..config.k {
            let mass = if diagonal { acc.diag[j].n } else { acc.stats[j].n() };
            if mass < config.min_weight * n || mass <= 0.0 {
                let worst = worst_record.get_or_insert_with(|| {
                    const RESCUE_SAMPLE: usize = 256;
                    let stride = (data.len() / RESCUE_SAMPLE).max(1);
                    data.iter()
                        .step_by(stride)
                        .min_by(|a, b| {
                            mixture.log_pdf(a).partial_cmp(&mixture.log_pdf(b)).expect("NaN")
                        })
                        .expect("non-empty data")
                        .clone()
                });
                // Jitter subsequent rescues so multiple starved components
                // don't collapse onto the same point.
                let mut seed = worst.clone();
                seed[0] += (comps.len() as f64) * 1e-3;
                let g = Gaussian::spherical(seed, global_avg_var)?;
                comps.push(g);
                weights.push(1.0 / n);
                continue;
            }
            let g = if diagonal {
                let (mean, mut vars) = acc.diag[j].moments();
                for v in &mut vars {
                    *v = v.max(1e-12);
                }
                Gaussian::diagonal(mean, &vars)?
            } else {
                Gaussian::new(acc.stats[j].mean()?, acc.stats[j].cov()?)?
            };
            comps.push(g);
            weights.push(mass / n);
        }
        mixture = Mixture::new(comps, weights)?;
    }

    recorder.counter("em.fits", 1);
    recorder.counter("em.iterations", iterations as u64);
    recorder.counter("em.estep_blocks", estep_blocks);
    recorder.counter(if converged { "em.converged" } else { "em.iter_capped" }, 1);
    recorder.observe("em.iters_per_fit", iterations as u64);
    recorder.observe("em.cost_us", em_cost_us(iterations as u64));

    Ok(EmFit {
        avg_log_likelihood: log_likelihood / n,
        mixture,
        log_likelihood,
        iterations,
        converged,
    })
}

/// One block's E-step output: its log-likelihood contribution plus
/// responsibility-weighted sufficient statistics for every component
/// (exactly one of `stats`/`diag` is populated, by covariance mode).
struct BlockStats {
    ll: f64,
    stats: Vec<SuffStats>,
    diag: Vec<DiagStats>,
}

impl BlockStats {
    fn new(d: usize, k: usize, diagonal: bool) -> Self {
        if diagonal {
            BlockStats { ll: 0.0, stats: Vec::new(), diag: (0..k).map(|_| DiagStats::new(d)).collect() }
        } else {
            BlockStats { ll: 0.0, stats: (0..k).map(|_| SuffStats::new(d)).collect(), diag: Vec::new() }
        }
    }

    fn add(&mut self, j: usize, x: &[f64], w: f64) {
        if self.diag.is_empty() {
            self.stats[j].add_slice(x, w);
        } else {
            self.diag[j].add_slice(x, w);
        }
    }

    fn merge(&mut self, other: &BlockStats) {
        self.ll += other.ll;
        for (a, b) in self.stats.iter_mut().zip(&other.stats) {
            a.merge(b);
        }
        for (a, b) in self.diag.iter_mut().zip(&other.diag) {
            a.merge(b);
        }
    }
}

/// Scores one [`BLOCK`]-sized block of records against `mixture`. Per
/// record the arithmetic is the scalar E-step's, identically ordered:
/// weighted log densities (batched kernel, bit-identical to
/// `lw + log_pdf`), log-sum-exp normalizer over components in order,
/// `exp(t - norm)` responsibilities, statistics accumulated in record
/// order with the uniform fallback for degenerate points.
fn score_block(
    mixture: &Mixture,
    batch: &Batch,
    block: usize,
    k: usize,
    diagonal: bool,
    scratch: &mut MixtureScratch,
) -> BlockStats {
    let d = batch.dim();
    let start = block * BLOCK;
    let count = BLOCK.min(batch.len() - start);
    let rows = batch.rows(start, count);
    mixture.weighted_log_density_block(rows, count, scratch);
    let mut out = BlockStats::new(d, k, diagonal);
    scratch.terms.resize(k, 0.0);
    for b in 0..count {
        for j in 0..k {
            scratch.terms[j] = scratch.weighted[j * count + b];
        }
        let norm = log_sum_exp(&scratch.terms);
        out.ll += norm;
        let x = &rows[b * d..(b + 1) * d];
        if norm.is_finite() {
            for (j, &t) in scratch.terms.iter().enumerate() {
                let r = (t - norm).exp();
                if r > 0.0 {
                    out.add(j, x, r);
                }
            }
        } else {
            // Degenerate point: spread responsibility uniformly.
            let r = 1.0 / k as f64;
            for j in 0..k {
                out.add(j, x, r);
            }
        }
    }
    out
}

/// Produces the initial mixture for EM.
fn initialize<R: Rng + ?Sized>(data: &[Vector], config: &EmConfig, rng: &mut R) -> Result<Mixture> {
    let d = data[0].dim();
    let mut global = SuffStats::new(d);
    for x in data {
        global.add(x, 1.0);
    }
    let gcov = global.cov()?;
    let avg_var = (gcov.trace() / d as f64).max(1e-6);

    match config.init {
        InitMethod::KMeansPlusPlus => {
            let km = kmeans(
                data,
                &KMeansConfig { k: config.k, max_iters: 10, seed: rng.gen() },
            )?;
            // Per-cluster covariance from the k-means partition; clusters too
            // small for a stable estimate fall back to the global sphere.
            let mut stats: Vec<SuffStats> = (0..config.k).map(|_| SuffStats::new(d)).collect();
            for (&a, x) in km.assignments.iter().zip(data) {
                stats[a].add(x, 1.0);
            }
            let mut comps = Vec::with_capacity(config.k);
            let mut weights = Vec::with_capacity(config.k);
            for (s, centroid) in stats.iter().zip(km.centroids) {
                let count = s.n().max(1.0);
                let g = if s.n() >= (d + 1) as f64 {
                    Gaussian::new(s.mean()?, s.cov()?)?
                } else {
                    Gaussian::spherical(centroid, avg_var)?
                };
                comps.push(g);
                weights.push(count);
            }
            Mixture::new(comps, weights)
        }
        InitMethod::Forgy => {
            let comps: Result<Vec<Gaussian>> = (0..config.k)
                .map(|_| {
                    let idx = rng.gen_range(0..data.len());
                    Gaussian::spherical(data[idx].clone(), avg_var)
                })
                .collect();
            Mixture::uniform(comps?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cludistream_rng::StdRng;

    /// Samples `n` points from a known 1-d two-component mixture.
    fn two_component_data(n: usize, seed: u64) -> Vec<Vector> {
        let gen = Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[-5.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[5.0]), 0.5).unwrap(),
            ],
            vec![0.3, 0.7],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| gen.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let data = two_component_data(2000, 1);
        let fit = fit_em(&data, &EmConfig { k: 2, seed: 2, ..Default::default() }).unwrap();
        assert!(fit.converged);
        let mut means: Vec<(f64, f64)> = fit
            .mixture
            .components()
            .iter()
            .zip(fit.mixture.weights())
            .map(|(c, &w)| (c.mean()[0], w))
            .collect();
        means.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((means[0].0 + 5.0).abs() < 0.2, "means {means:?}");
        assert!((means[1].0 - 5.0).abs() < 0.2, "means {means:?}");
        assert!((means[0].1 - 0.3).abs() < 0.05, "weights {means:?}");
    }

    #[test]
    fn log_likelihood_non_decreasing() {
        // Run EM iteration-by-iteration via max_iters and check monotonicity,
        // the property guaranteed by Dempster et al. [3].
        let data = two_component_data(500, 3);
        let mut prev = f64::NEG_INFINITY;
        for iters in 1..8 {
            let fit = fit_em(
                &data,
                &EmConfig { k: 2, max_iters: iters, tol: 0.0, seed: 4, ..Default::default() },
            )
            .unwrap();
            assert!(
                fit.log_likelihood >= prev - 1e-6,
                "iteration {iters}: {} < {prev}",
                fit.log_likelihood
            );
            prev = fit.log_likelihood;
        }
    }

    #[test]
    fn single_component_matches_moments() {
        let data = two_component_data(1000, 5);
        let fit = fit_em(&data, &EmConfig { k: 1, seed: 6, ..Default::default() }).unwrap();
        let mut s = SuffStats::new(1);
        for x in &data {
            s.add(x, 1.0);
        }
        let g = &fit.mixture.components()[0];
        assert!((g.mean()[0] - s.mean().unwrap()[0]).abs() < 1e-6);
        assert!((g.cov()[(0, 0)] - s.cov().unwrap()[(0, 0)]).abs() < 1e-4);
    }

    #[test]
    fn diagonal_covariance_zeroes_off_diagonals() {
        // Correlated 2-d data.
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gaussian::new(
            Vector::zeros(2),
            cludistream_linalg::Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]),
        )
        .unwrap();
        let data: Vec<Vector> = (0..500).map(|_| g.sample(&mut rng)).collect();
        let fit = fit_em(
            &data,
            &EmConfig { k: 1, covariance: CovarianceType::Diagonal, seed: 8, ..Default::default() },
        )
        .unwrap();
        let c = fit.mixture.components()[0].cov();
        assert_eq!(c[(0, 1)], 0.0);
        assert_eq!(c[(1, 0)], 0.0);
        assert!(c[(0, 0)] > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_component_data(300, 9);
        let cfg = EmConfig { k: 3, seed: 10, ..Default::default() };
        let a = fit_em(&data, &cfg).unwrap();
        let b = fit_em(&data, &cfg).unwrap();
        assert_eq!(a.log_likelihood, b.log_likelihood);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn forgy_initialization_works() {
        let data = two_component_data(500, 11);
        let fit = fit_em(
            &data,
            &EmConfig { k: 2, init: InitMethod::Forgy, seed: 12, ..Default::default() },
        )
        .unwrap();
        assert!(fit.avg_log_likelihood.is_finite());
    }

    #[test]
    fn avg_equals_total_over_n() {
        let data = two_component_data(200, 13);
        let fit = fit_em(&data, &EmConfig { k: 2, seed: 14, ..Default::default() }).unwrap();
        assert!((fit.avg_log_likelihood - fit.log_likelihood / 200.0).abs() < 1e-12);
        // And it matches Definition 1 evaluated on the final mixture.
        let def1 = fit.mixture.avg_log_likelihood(&data);
        assert!((fit.avg_log_likelihood - def1).abs() < 1e-9);
    }

    #[test]
    fn errors_on_bad_input() {
        let data = two_component_data(10, 15);
        assert!(fit_em(&data, &EmConfig { k: 0, ..Default::default() }).is_err());
        assert!(fit_em(&data[..2], &EmConfig { k: 5, ..Default::default() }).is_err());
        assert!(fit_em(&data, &EmConfig { k: 2, tol: -1.0, ..Default::default() }).is_err());
        let bad = vec![Vector::from_slice(&[f64::NAN]); 10];
        assert!(fit_em(&bad, &EmConfig { k: 1, ..Default::default() }).is_err());
    }

    #[test]
    fn identical_points_degenerate_data_survives() {
        let data = vec![Vector::from_slice(&[2.0, 2.0]); 50];
        let fit = fit_em(&data, &EmConfig { k: 2, seed: 16, ..Default::default() }).unwrap();
        assert!(fit.log_likelihood.is_finite());
        for c in fit.mixture.components() {
            // Rescued components are jittered by up to K·1e-3.
            assert!((c.mean()[0] - 2.0).abs() < 1e-2);
        }
    }

    #[test]
    fn warm_start_converges_faster_on_mild_drift() {
        // Fit on a chunk, drift the distribution slightly, re-fit: warm
        // start should need no more iterations than a cold start.
        let data = two_component_data(800, 30);
        let cfg = EmConfig { k: 2, seed: 31, ..Default::default() };
        let first = fit_em(&data, &cfg).unwrap();
        // Mildly drifted continuation.
        let drifted: Vec<Vector> = two_component_data(800, 32)
            .into_iter()
            .map(|x| Vector::from_slice(&[x[0] + 0.3]))
            .collect();
        let warm = fit_em_warm(&drifted, &first.mixture, &cfg).unwrap();
        let cold = fit_em(&drifted, &cfg).unwrap();
        // Both converge quickly on separated blobs; the warm start must not
        // be materially slower and must reach comparable quality.
        assert!(
            warm.iterations <= cold.iterations + 2,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.converged);
        assert!(warm.avg_log_likelihood > cold.avg_log_likelihood - 0.2);
    }

    #[test]
    fn warm_start_uses_initial_component_count() {
        let data = two_component_data(300, 33);
        let three = fit_em(&data, &EmConfig { k: 3, seed: 34, ..Default::default() }).unwrap();
        // config.k says 5, but the warm model has 3 components.
        let warm = fit_em_warm(&data, &three.mixture, &EmConfig { k: 5, seed: 35, ..Default::default() })
            .unwrap();
        assert_eq!(warm.mixture.k(), 3);
    }

    #[test]
    fn warm_start_dimension_mismatch_rejected() {
        let data = two_component_data(100, 36);
        let m = Mixture::single(
            Gaussian::spherical(Vector::from_slice(&[0.0, 0.0]), 1.0).unwrap(),
        );
        assert!(fit_em_warm(&data, &m, &EmConfig::default()).is_err());
    }

    #[test]
    fn recorded_fit_matches_unrecorded_and_counts() {
        use cludistream_obs::{Obs, Registry};
        use std::sync::Arc;
        let data = two_component_data(500, 40);
        let cfg = EmConfig { k: 2, seed: 41, ..Default::default() };
        let plain = fit_em(&data, &cfg).unwrap();
        let registry = Arc::new(Registry::new());
        let obs = Obs::from_registry(registry.clone());
        let recorded = fit_em_recorded(&data, &cfg, &obs).unwrap();
        // Telemetry must not perturb the numerics.
        assert_eq!(plain.log_likelihood, recorded.log_likelihood);
        assert_eq!(plain.iterations, recorded.iterations);
        assert_eq!(registry.counter_value("em.fits"), 1);
        assert_eq!(registry.counter_value("em.iterations"), recorded.iterations as u64);
        assert_eq!(
            registry.counter_value("em.converged"),
            u64::from(recorded.converged)
        );
        let h = registry.histogram_snapshot("em.iters_per_fit").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, recorded.iterations as u64);
        // Convergence journaled exactly once.
        assert_eq!(registry.events_recorded(), u64::from(recorded.converged));
    }

    #[test]
    fn thread_count_never_changes_the_fit() {
        use cludistream_rng::check;
        // Random multi-block workloads (BLOCK = 256 → 2-3 blocks), both
        // covariance modes: threads ∈ {2, 4, 8} must reproduce threads=1
        // bit for bit — mixtures, log-likelihoods, iteration counts.
        check::cases("em.threads_bit_identical", 6, |rng| {
            let n = 300 + (rng.gen::<u64>() % 300) as usize;
            let d = 1 + (rng.gen::<u64>() % 3) as usize;
            let k = 2 + (rng.gen::<u64>() % 2) as usize;
            let seed = rng.gen::<u64>();
            let comps: Vec<Gaussian> = (0..k)
                .map(|j| {
                    Gaussian::spherical(Vector::filled(d, j as f64 * 8.0 - 4.0), 1.0).unwrap()
                })
                .collect();
            let gen = Mixture::uniform(comps).unwrap();
            let data: Vec<Vector> = (0..n).map(|_| gen.sample(rng)).collect();
            for covariance in [CovarianceType::Full, CovarianceType::Diagonal] {
                let cfg = EmConfig {
                    k,
                    max_iters: 12,
                    tol: 1e-6,
                    covariance,
                    seed,
                    threads: 1,
                    ..Default::default()
                };
                let base = fit_em(&data, &cfg).unwrap();
                for threads in [2usize, 4, 8] {
                    let f = fit_em(&data, &EmConfig { threads, ..cfg.clone() }).unwrap();
                    assert_eq!(
                        f.log_likelihood.to_bits(),
                        base.log_likelihood.to_bits(),
                        "ll, threads={threads} cov={covariance:?}"
                    );
                    assert_eq!(
                        f.avg_log_likelihood.to_bits(),
                        base.avg_log_likelihood.to_bits(),
                        "avg ll, threads={threads}"
                    );
                    assert_eq!(f.iterations, base.iterations, "iterations, threads={threads}");
                    assert_eq!(f.converged, base.converged, "converged, threads={threads}");
                    for (a, b) in f.mixture.weights().iter().zip(base.mixture.weights()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "weight, threads={threads}");
                    }
                    for (ca, cb) in
                        f.mixture.components().iter().zip(base.mixture.components())
                    {
                        for (a, b) in ca.mean().iter().zip(cb.mean().iter()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "mean, threads={threads}");
                        }
                        for (a, b) in ca.cov().as_slice().iter().zip(cb.cov().as_slice()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "cov, threads={threads}");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn auto_threads_matches_single_thread() {
        // threads = 0 resolves to the machine's parallelism; whatever that
        // is, the fit must equal the sequential one bit for bit.
        let data = two_component_data(700, 21);
        let cfg = EmConfig { k: 2, seed: 22, ..Default::default() };
        let base = fit_em(&data, &cfg).unwrap();
        let auto = fit_em(&data, &EmConfig { threads: 0, ..cfg }).unwrap();
        assert_eq!(base.log_likelihood.to_bits(), auto.log_likelihood.to_bits());
        assert_eq!(base.iterations, auto.iterations);
    }

    #[test]
    fn estep_block_accounting() {
        use cludistream_obs::{Obs, Registry};
        use std::sync::Arc;
        // 600 records → ⌈600/256⌉ = 3 blocks per iteration, 4 iterations.
        let data = two_component_data(600, 50);
        let cfg = EmConfig { k: 2, seed: 51, max_iters: 4, tol: 0.0, ..Default::default() };
        let registry = Arc::new(Registry::new());
        let obs = Obs::from_registry(registry.clone());
        let fit = fit_em_recorded(&data, &cfg, &obs).unwrap();
        assert_eq!(fit.iterations, 4);
        assert_eq!(registry.counter_value("em.estep_blocks"), 12);
    }

    #[test]
    fn more_components_fit_at_least_as_well() {
        let data = two_component_data(800, 17);
        let f1 = fit_em(&data, &EmConfig { k: 1, seed: 18, tol: 1e-8, ..Default::default() }).unwrap();
        let f2 = fit_em(&data, &EmConfig { k: 2, seed: 18, tol: 1e-8, ..Default::default() }).unwrap();
        assert!(
            f2.avg_log_likelihood > f1.avg_log_likelihood - 1e-6,
            "k=2 {} vs k=1 {}",
            f2.avg_log_likelihood,
            f1.avg_log_likelihood
        );
    }
}
