use crate::{log_sum_exp, Gaussian, GmmError, Result, SuffStats};
use cludistream_linalg::{Matrix, Vector};
use cludistream_rng::Rng;

/// A weighted Gaussian mixture `p(x) = Σ_j w_j p(x|j)` (paper Eq. 1).
///
/// Weights are validated and renormalized at construction. All density
/// arithmetic happens in the log domain.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<Gaussian>,
    weights: Vec<f64>,
    /// Cached `ln w_j` for density evaluation.
    log_weights: Vec<f64>,
}

impl Mixture {
    /// Creates a mixture from components and (unnormalized, positive)
    /// weights. Fails on empty input, mismatched lengths or dimensions, and
    /// invalid weights.
    pub fn new(components: Vec<Gaussian>, weights: Vec<f64>) -> Result<Self> {
        if components.is_empty() {
            return Err(GmmError::InvalidParameter { name: "components", constraint: "non-empty" });
        }
        if components.len() != weights.len() {
            return Err(GmmError::DimensionMismatch {
                expected: components.len(),
                got: weights.len(),
            });
        }
        let d = components[0].dim();
        for c in &components {
            if c.dim() != d {
                return Err(GmmError::DimensionMismatch { expected: d, got: c.dim() });
            }
        }
        let total: f64 = weights.iter().sum();
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || weights.iter().any(|w| *w < 0.0 || !w.is_finite())
        {
            return Err(GmmError::InvalidWeights);
        }
        let weights: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let log_weights = weights
            .iter()
            .map(|&w| if w > 0.0 { w.ln() } else { f64::NEG_INFINITY })
            .collect();
        Ok(Mixture { components, weights, log_weights })
    }

    /// Convenience: a single-component mixture.
    pub fn single(component: Gaussian) -> Self {
        Mixture {
            log_weights: vec![0.0],
            weights: vec![1.0],
            components: vec![component],
        }
    }

    /// Creates a uniformly weighted mixture.
    pub fn uniform(components: Vec<Gaussian>) -> Result<Self> {
        let k = components.len();
        Mixture::new(components, vec![1.0; k])
    }

    /// Number of components K.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Dimensionality d.
    pub fn dim(&self) -> usize {
        self.components[0].dim()
    }

    /// Borrow the components.
    pub fn components(&self) -> &[Gaussian] {
        &self.components
    }

    /// Borrow the normalized weights (they sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Borrow the cached `ln w_j` values (`-inf` for zero weights). These
    /// are exactly the log weights the density and posterior paths use,
    /// so callers that combine them with component log densities reproduce
    /// [`Self::log_pdf`]'s terms bit for bit.
    pub fn log_weights(&self) -> &[f64] {
        &self.log_weights
    }

    /// Shannon entropy of the weight simplex, in nats: `−Σ_j w_j ln w_j`
    /// (zero-weight components contribute nothing). A quality-plane
    /// gauge: entropy near `ln k` means balanced components, entropy
    /// collapsing toward 0 means one component is absorbing the stream.
    pub fn weight_entropy(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.log_weights)
            .filter(|(w, _)| **w > 0.0)
            .map(|(w, lw)| -w * lw)
            .sum()
    }

    /// `(min, max)` component weight — the quality plane's collapse and
    /// dominance gauges. `(0, 0)` is impossible for a valid mixture, and
    /// `k == 1` yields `(1, 1)`.
    pub fn weight_extrema(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &w in &self.weights {
            if w < min {
                min = w;
            }
            if w > max {
                max = w;
            }
        }
        (min, max)
    }

    /// Log density `ln p(x) = ln Σ_j w_j p(x|j)` via log-sum-exp.
    pub fn log_pdf(&self, x: &Vector) -> f64 {
        let terms: Vec<f64> = self
            .components
            .iter()
            .zip(&self.log_weights)
            .map(|(c, lw)| lw + c.log_pdf(x))
            .collect();
        log_sum_exp(&terms)
    }

    /// Density `p(x)`.
    pub fn pdf(&self, x: &Vector) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Posterior membership probabilities `Pr(j|x) = w_j p(x|j) / p(x)`
    /// (paper Eq. 2), computed stably in the log domain. The returned vector
    /// sums to 1 (uniform fallback when all densities underflow).
    pub fn posteriors(&self, x: &Vector) -> Vec<f64> {
        let terms: Vec<f64> = self
            .components
            .iter()
            .zip(&self.log_weights)
            .map(|(c, lw)| lw + c.log_pdf(x))
            .collect();
        let norm = log_sum_exp(&terms);
        if !norm.is_finite() {
            return vec![1.0 / self.k() as f64; self.k()];
        }
        terms.into_iter().map(|t| (t - norm).exp()).collect()
    }

    /// Index of the component with the highest posterior for `x`.
    pub fn map_component(&self, x: &Vector) -> usize {
        self.components
            .iter()
            .zip(&self.log_weights)
            .map(|(c, lw)| lw + c.log_pdf(x))
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN log density"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Average log likelihood of `data` under this mixture — the paper's
    /// Definition 1. Returns `-inf` on empty data.
    ///
    /// Evaluated through the batched density kernels (flatten once, score
    /// [`crate::BLOCK`]-sized blocks); bit-identical to the per-record
    /// `Σ log_pdf(x) / n` it replaces.
    pub fn avg_log_likelihood(&self, data: &[Vector]) -> f64 {
        let batch = crate::Batch::from_records(data);
        self.avg_log_likelihood_batch(&batch, &mut crate::MixtureScratch::default())
    }

    /// Draws one sample: pick a component by weight, then sample from it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        self.sample_labeled(rng).0
    }

    /// Draws one sample together with the index of the component that
    /// generated it — ground truth for external validation metrics.
    pub fn sample_labeled<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vector, usize) {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (j, (c, &w)) in self.components.iter().zip(&self.weights).enumerate() {
            acc += w;
            if u < acc {
                return (c.sample(rng), j);
            }
        }
        // Floating-point slack: fall through to the last component.
        let last = self.components.len() - 1;
        (self.components[last].sample(rng), last)
    }

    /// Moment-preserving merge of components `i` and `j` into a single
    /// Gaussian with weight `w_i + w_j`:
    ///
    /// ```text
    /// μ' = (w_i μ_i + w_j μ_j) / (w_i + w_j)
    /// Σ' = Σ_k (w_k/w') (Σ_k + (μ_k-μ')(μ_k-μ')ᵀ)
    /// ```
    ///
    /// This is the analytic minimizer of moment mismatch and the paper's
    /// starting point before the downhill-simplex refinement of `l(x)`.
    pub fn moment_merge(&self, i: usize, j: usize) -> Result<(Gaussian, f64)> {
        if i == j || i >= self.k() || j >= self.k() {
            return Err(GmmError::InvalidParameter {
                name: "i/j",
                constraint: "distinct valid component indices",
            });
        }
        let (wi, wj) = (self.weights[i], self.weights[j]);
        let w = wi + wj;
        if w.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GmmError::InvalidWeights);
        }
        let (ci, cj) = (&self.components[i], &self.components[j]);
        let mut mu = ci.mean().scaled(wi / w);
        mu.axpy(wj / w, cj.mean());
        let mut cov = Matrix::zeros(self.dim(), self.dim());
        for (wk, ck) in [(wi, ci), (wj, cj)] {
            let frac = wk / w;
            cov += &ck.cov().scaled(frac);
            let dm = ck.mean() - &mu;
            cov.rank1_update(frac, &dm);
        }
        Ok((Gaussian::new(mu, cov)?, w))
    }

    /// Aggregate mean and covariance of the whole mixture, treating it as a
    /// single distribution (the `(μ_Mix, Σ_Mix)` of the paper's split
    /// criterion, Eq. 6).
    pub fn aggregate(&self) -> Result<Gaussian> {
        let mut stats = SuffStats::new(self.dim());
        for (c, &w) in self.components.iter().zip(&self.weights) {
            stats.merge(&SuffStats::from_gaussian(c, w));
        }
        stats.to_gaussian().map(|(g, _)| g)
    }

    /// Returns a new mixture with component `idx` removed and the remaining
    /// weights renormalized. Errors when this would empty the mixture.
    pub fn without_component(&self, idx: usize) -> Result<Mixture> {
        if idx >= self.k() {
            return Err(GmmError::InvalidParameter { name: "idx", constraint: "idx < K" });
        }
        if self.k() == 1 {
            return Err(GmmError::InvalidParameter {
                name: "idx",
                constraint: "mixture must keep at least one component",
            });
        }
        let mut comps = self.components.clone();
        let mut weights = self.weights.clone();
        comps.remove(idx);
        weights.remove(idx);
        Mixture::new(comps, weights)
    }

    /// Returns a new mixture with `component` appended at the given
    /// (unnormalized relative) weight.
    pub fn with_component(&self, component: Gaussian, weight: f64) -> Result<Mixture> {
        if component.dim() != self.dim() {
            return Err(GmmError::DimensionMismatch { expected: self.dim(), got: component.dim() });
        }
        let mut comps = self.components.clone();
        let mut weights = self.weights.clone();
        comps.push(component);
        weights.push(weight);
        Mixture::new(comps, weights)
    }

    /// Concatenates several weighted mixtures into one flat mixture; `scales`
    /// gives each input mixture's relative mass (e.g. record counts). The
    /// "simple procedure at the coordinator" of Sec. 5.2.
    pub fn concat(mixtures: &[(&Mixture, f64)]) -> Result<Mixture> {
        let mut comps = Vec::new();
        let mut weights = Vec::new();
        for (m, scale) in mixtures {
            if !matches!(
                scale.partial_cmp(&0.0),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) {
                return Err(GmmError::InvalidWeights);
            }
            for (c, &w) in m.components.iter().zip(&m.weights) {
                comps.push(c.clone());
                weights.push(w * scale);
            }
        }
        Mixture::new(comps, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cludistream_rng::StdRng;

    fn two_blobs() -> Mixture {
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[10.0]), 1.0).unwrap(),
            ],
            vec![0.25, 0.75],
        )
        .unwrap()
    }

    #[test]
    fn weights_normalized() {
        let m = Mixture::new(
            vec![
                Gaussian::spherical(Vector::zeros(1), 1.0).unwrap(),
                Gaussian::spherical(Vector::zeros(1), 1.0).unwrap(),
            ],
            vec![2.0, 6.0],
        )
        .unwrap();
        assert!((m.weights()[0] - 0.25).abs() < 1e-12);
        assert!((m.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pdf_is_weighted_sum() {
        let m = two_blobs();
        let x = Vector::from_slice(&[0.0]);
        let expect = 0.25 * m.components()[0].pdf(&x) + 0.75 * m.components()[1].pdf(&x);
        assert!((m.pdf(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn posteriors_sum_to_one_and_pick_near_component() {
        let m = two_blobs();
        let p = m.posteriors(&Vector::from_slice(&[-0.5]));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.99, "posterior {p:?}");
        assert_eq!(m.map_component(&Vector::from_slice(&[-0.5])), 0);
        assert_eq!(m.map_component(&Vector::from_slice(&[10.2])), 1);
    }

    #[test]
    fn posteriors_underflow_fallback_is_uniform() {
        let m = two_blobs();
        // Extremely far point: both component densities underflow in the
        // linear domain but the log domain keeps them ordered; posteriors
        // remain valid.
        let p = m.posteriors(&Vector::from_slice(&[1e6]));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > 0.99);
    }

    #[test]
    fn avg_log_likelihood_definition() {
        let m = two_blobs();
        let data = vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[10.0])];
        let expect =
            (m.log_pdf(&data[0]) + m.log_pdf(&data[1])) / 2.0;
        assert!((m.avg_log_likelihood(&data) - expect).abs() < 1e-12);
        assert_eq!(m.avg_log_likelihood(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = || Gaussian::spherical(Vector::zeros(1), 1.0).unwrap();
        assert!(Mixture::new(vec![], vec![]).is_err());
        assert!(Mixture::new(vec![g()], vec![1.0, 2.0]).is_err());
        assert!(Mixture::new(vec![g()], vec![-1.0]).is_err());
        assert!(Mixture::new(vec![g()], vec![0.0]).is_err());
        assert!(Mixture::new(vec![g()], vec![f64::NAN]).is_err());
        let g2 = Gaussian::spherical(Vector::zeros(2), 1.0).unwrap();
        assert!(Mixture::new(vec![g(), g2], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn sampling_respects_weights() {
        let m = two_blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let near_second =
            (0..n).filter(|_| m.sample(&mut rng)[0] > 5.0).count() as f64 / n as f64;
        assert!((near_second - 0.75).abs() < 0.03, "fraction {near_second}");
    }

    #[test]
    fn moment_merge_preserves_mean_and_mass() {
        let m = two_blobs();
        let (merged, w) = m.moment_merge(0, 1).unwrap();
        assert!((w - 1.0).abs() < 1e-12);
        // Combined mean: 0.25*0 + 0.75*10 = 7.5.
        assert!((merged.mean()[0] - 7.5).abs() < 1e-12);
        // Combined variance: Σ w_k (σ² + (μ_k-μ')²) = 1 + 0.25*56.25 + 0.75*6.25.
        let expect_var = 1.0 + 0.25 * 56.25 + 0.75 * 6.25;
        assert!((merged.cov()[(0, 0)] - expect_var).abs() < 1e-9);
    }

    #[test]
    fn moment_merge_rejects_bad_indices() {
        let m = two_blobs();
        assert!(m.moment_merge(0, 0).is_err());
        assert!(m.moment_merge(0, 5).is_err());
    }

    #[test]
    fn aggregate_matches_moment_merge_for_two() {
        let m = two_blobs();
        let agg = m.aggregate().unwrap();
        let (merged, _) = m.moment_merge(0, 1).unwrap();
        assert!((agg.mean()[0] - merged.mean()[0]).abs() < 1e-9);
        assert!((agg.cov()[(0, 0)] - merged.cov()[(0, 0)]).abs() < 1e-6);
    }

    #[test]
    fn add_remove_components() {
        let m = two_blobs();
        let m2 = m.with_component(Gaussian::spherical(Vector::from_slice(&[5.0]), 1.0).unwrap(), 1.0).unwrap();
        assert_eq!(m2.k(), 3);
        let m3 = m2.without_component(2).unwrap();
        assert_eq!(m3.k(), 2);
        assert!((m3.weights()[1] - 0.75).abs() < 1e-12);
        assert!(Mixture::single(Gaussian::spherical(Vector::zeros(1), 1.0).unwrap())
            .without_component(0)
            .is_err());
    }

    #[test]
    fn concat_scales_masses() {
        let a = Mixture::single(Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap());
        let b = Mixture::single(Gaussian::spherical(Vector::from_slice(&[5.0]), 1.0).unwrap());
        let m = Mixture::concat(&[(&a, 100.0), (&b, 300.0)]).unwrap();
        assert_eq!(m.k(), 2);
        assert!((m.weights()[0] - 0.25).abs() < 1e-12);
        assert!((m.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn labeled_sampling_matches_component_regions() {
        use cludistream_rng::StdRng;
        let m = two_blobs();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..500 {
            let (x, label) = m.sample_labeled(&mut rng);
            let expect = if x[0] < 5.0 { 0 } else { 1 };
            assert_eq!(label, expect, "sample {x} labeled {label}");
        }
    }

    #[test]
    fn single_is_unit_weight() {
        let m = Mixture::single(Gaussian::spherical(Vector::zeros(1), 1.0).unwrap());
        assert_eq!(m.k(), 1);
        assert_eq!(m.weights(), &[1.0]);
    }

    #[test]
    fn weight_entropy_and_extrema() {
        let m = two_blobs();
        let expect = -(0.25f64 * 0.25f64.ln() + 0.75 * 0.75f64.ln());
        assert!((m.weight_entropy() - expect).abs() < 1e-12);
        assert_eq!(m.weight_extrema(), (0.25, 0.75));

        // A single component: zero entropy, degenerate extrema.
        let single = Mixture::single(Gaussian::spherical(Vector::zeros(1), 1.0).unwrap());
        assert_eq!(single.weight_entropy(), 0.0);
        assert_eq!(single.weight_extrema(), (1.0, 1.0));

        // Uniform weights maximize entropy at ln k.
        let uniform = Mixture::uniform(vec![
            Gaussian::spherical(Vector::zeros(1), 1.0).unwrap(),
            Gaussian::spherical(Vector::from_slice(&[4.0]), 1.0).unwrap(),
            Gaussian::spherical(Vector::from_slice(&[8.0]), 1.0).unwrap(),
        ])
        .unwrap();
        assert!((uniform.weight_entropy() - 3.0f64.ln()).abs() < 1e-12);
    }
}
