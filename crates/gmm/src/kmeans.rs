use crate::{GmmError, Result};
use cludistream_linalg::Vector;
use cludistream_rng::{Rng, StdRng};

/// Configuration for Lloyd's k-means with k-means++ seeding.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no assignment changes between iterations.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 5, max_iters: 50, seed: 0 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Final centroids (length k).
    pub centroids: Vec<Vector>,
    /// Cluster index per input record.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
pub fn kmeans_plusplus_seeds<R: Rng + ?Sized>(data: &[Vector], k: usize, rng: &mut R) -> Vec<Vector> {
    assert!(!data.is_empty() && k >= 1, "kmeans++ needs data and k >= 1");
    let mut centroids: Vec<Vector> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut dist_sq: Vec<f64> = data.iter().map(|x| x.dist_sq(&centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            data[rng.gen_range(0..data.len())].clone()
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            data[chosen].clone()
        };
        for (d, x) in dist_sq.iter_mut().zip(data) {
            *d = d.min(x.dist_sq(&next));
        }
        centroids.push(next);
    }
    centroids
}

/// Lloyd's k-means with k-means++ seeding.
///
/// Used to initialize EM (cluster means seed the Gaussians) and by the SEM
/// baseline's secondary compression phase. Errors when `data.len() < k`.
pub fn kmeans(data: &[Vector], config: &KMeansConfig) -> Result<KMeansFit> {
    if config.k == 0 {
        return Err(GmmError::InvalidParameter { name: "k", constraint: "k >= 1" });
    }
    if data.len() < config.k {
        return Err(GmmError::NotEnoughData { have: data.len(), need: config.k });
    }
    let d = data[0].dim();
    for x in data {
        if x.dim() != d {
            return Err(GmmError::DimensionMismatch { expected: d, got: x.dim() });
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_plusplus_seeds(data, config.k, &mut rng);
    let mut assignments = vec![usize::MAX; data.len()];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (a, x) in assignments.iter_mut().zip(data) {
            let nearest = centroids
                .iter()
                .enumerate()
                .map(|(c, m)| (c, x.dist_sq(m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                .map(|(c, _)| c)
                .expect("k >= 1");
            if *a != nearest {
                *a = nearest;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update step.
        let mut sums = vec![Vector::zeros(d); config.k];
        let mut counts = vec![0usize; config.k];
        for (&a, x) in assignments.iter().zip(data) {
            sums[a] += x;
            counts[a] += 1;
        }
        for (c, (sum, &count)) in sums.into_iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[c] = sum.scaled(1.0 / count as f64);
            } else {
                // Empty cluster: reseed at the point farthest from its
                // centroid to keep k clusters alive.
                let (far_idx, _) = data
                    .iter()
                    .enumerate()
                    .map(|(i, x)| (i, x.dist_sq(&centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                    .expect("non-empty data");
                centroids[c] = data[far_idx].clone();
            }
        }
    }

    let inertia = assignments
        .iter()
        .zip(data)
        .map(|(&a, x)| x.dist_sq(&centroids[a]))
        .sum();
    Ok(KMeansFit { centroids, assignments, inertia, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data() -> Vec<Vector> {
        // Two tight blobs around 0 and 100.
        (0..40)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 100.0 };
                Vector::from_slice(&[base + (i / 2) as f64 * 0.1])
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let fit = kmeans(&blob_data(), &KMeansConfig { k: 2, ..Default::default() }).unwrap();
        let mut c: Vec<f64> = fit.centroids.iter().map(|v| v[0]).collect();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 0.95).abs() < 1.0, "centroid {c:?}");
        assert!((c[1] - 100.95).abs() < 1.0, "centroid {c:?}");
        // All points in a blob share an assignment.
        let a0 = fit.assignments[0];
        for i in (0..40).step_by(2) {
            assert_eq!(fit.assignments[i], a0);
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blob_data();
        let f1 = kmeans(&data, &KMeansConfig { k: 1, ..Default::default() }).unwrap();
        let f2 = kmeans(&data, &KMeansConfig { k: 2, ..Default::default() }).unwrap();
        assert!(f2.inertia < f1.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data: Vec<Vector> =
            (0..5).map(|i| Vector::from_slice(&[i as f64 * 10.0])).collect();
        let fit = kmeans(&data, &KMeansConfig { k: 5, ..Default::default() }).unwrap();
        assert!(fit.inertia < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blob_data();
        let cfg = KMeansConfig { k: 2, seed: 9, ..Default::default() };
        let a = kmeans(&data, &cfg).unwrap();
        let b = kmeans(&data, &cfg).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn errors_on_bad_input() {
        let data = blob_data();
        assert!(kmeans(&data, &KMeansConfig { k: 0, ..Default::default() }).is_err());
        assert!(kmeans(&data[..1], &KMeansConfig { k: 2, ..Default::default() }).is_err());
        let mixed = vec![Vector::zeros(1), Vector::zeros(2)];
        assert!(kmeans(&mixed, &KMeansConfig { k: 1, ..Default::default() }).is_err());
    }

    #[test]
    fn identical_points_dont_crash_seeding() {
        let data = vec![Vector::from_slice(&[1.0]); 10];
        let fit = kmeans(&data, &KMeansConfig { k: 3, ..Default::default() }).unwrap();
        assert_eq!(fit.centroids.len(), 3);
        assert!(fit.inertia < 1e-12);
    }

    #[test]
    fn seeds_are_spread_out() {
        let data = blob_data();
        let mut rng = StdRng::seed_from_u64(1);
        let seeds = kmeans_plusplus_seeds(&data, 2, &mut rng);
        // With two distant blobs, k-means++ virtually always picks one seed
        // from each.
        let gap = (seeds[0][0] - seeds[1][0]).abs();
        assert!(gap > 50.0, "seeds too close: {gap}");
    }
}
