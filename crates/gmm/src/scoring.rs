//! Batched Definition-1 scoring: hard cluster assignment, posterior
//! responsibilities and log density for every record of a [`Batch`].
//!
//! This is the read side of the serving layer: a published mixture
//! snapshot answers "which cluster is this record in?" without touching
//! coordinator state. The kernel reuses the blocked density table of
//! [`Mixture::log_pdf_batch`] (one weighted log-density pass per
//! [`BLOCK`]-sized row block), so scoring `n` records costs one batched
//! density sweep instead of `n` per-record `Vector` walks.
//!
//! # Bit-identity contract
//!
//! For every record the batched kernel performs the same floating-point
//! operations in the same order as the scalar reference path
//! ([`score_record`], built on [`Mixture::posteriors`] /
//! [`Mixture::map_component`] / [`Mixture::log_pdf`]), and blocks are
//! concatenated in record order, so the output is bit-identical to the
//! per-record loop for *any* thread count — the same contract the
//! data-parallel E-step honours.

use crate::{log_sum_exp, Batch, GmmError, Mixture, MixtureScratch, Result, BLOCK};
use cludistream_linalg::Vector;
use cludistream_par::{par_block_map, resolve_workers};

/// Scoring output in structure-of-arrays layout: for record `i`,
/// `labels()[i]` is the hard (maximum-posterior) component, `log_pdf()[i]`
/// is `ln p(x_i)` under the mixture, and `responsibilities(i)` are the
/// `k` posterior membership probabilities of paper Eq. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Scores {
    k: usize,
    labels: Vec<u32>,
    log_pdf: Vec<f64>,
    /// Record-major `n × k` table: `resp[i*k + j] = Pr(j | x_i)`.
    responsibilities: Vec<f64>,
}

impl Scores {
    /// Number of scored records.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no records were scored.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of mixture components `k` (the width of each
    /// responsibility row).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Hard labels, one per record: the component with the highest
    /// posterior (ties resolve like [`Mixture::map_component`]).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Per-record mixture log densities `ln p(x_i)`.
    pub fn log_pdf(&self) -> &[f64] {
        &self.log_pdf
    }

    /// The posterior responsibility row for record `i`; sums to 1
    /// (uniform when all component densities underflow, matching
    /// [`Mixture::posteriors`]).
    pub fn responsibilities(&self, i: usize) -> &[f64] {
        &self.responsibilities[i * self.k..(i + 1) * self.k]
    }

    /// Average log likelihood of the scored records — the paper's
    /// Definition 1 over this batch. `-inf` when empty.
    pub fn avg_log_likelihood(&self) -> f64 {
        if self.log_pdf.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.log_pdf.iter().sum::<f64>() / self.log_pdf.len() as f64
    }
}

/// Scores one block of `count` row-major records, appending to the
/// output columns. The per-record arithmetic mirrors the scalar
/// posterior path exactly: gather `k` weighted log densities, one
/// log-sum-exp, one subtract-exp per responsibility.
fn score_block(
    mixture: &Mixture,
    rows: &[f64],
    count: usize,
    scratch: &mut MixtureScratch,
    labels: &mut Vec<u32>,
    log_pdf: &mut Vec<f64>,
    responsibilities: &mut Vec<f64>,
) {
    let k = mixture.k();
    mixture.weighted_log_density_block(rows, count, scratch);
    scratch.terms.resize(k, 0.0);
    for b in 0..count {
        for j in 0..k {
            scratch.terms[j] = scratch.weighted[j * count + b];
        }
        let norm = log_sum_exp(&scratch.terms);
        // Last-maximum tie-breaking, exactly like Mixture::map_component's
        // max_by over the same terms.
        let mut label = 0u32;
        let mut best = f64::NEG_INFINITY;
        for (j, &t) in scratch.terms.iter().enumerate() {
            if t >= best {
                best = t;
                label = j as u32;
            }
        }
        labels.push(label);
        log_pdf.push(norm);
        if norm.is_finite() {
            for &t in scratch.terms.iter() {
                responsibilities.push((t - norm).exp());
            }
        } else {
            // All densities underflowed: uniform fallback, matching
            // Mixture::posteriors.
            responsibilities.extend(std::iter::repeat(1.0 / k as f64).take(k));
        }
    }
}

/// Batched Definition-1 assignment of every record in `batch` under
/// `mixture`: hard label, posterior responsibilities and log density
/// per record (see [`Scores`]).
///
/// `threads` selects the worker count for block-level parallelism
/// (`0` = all cores, `1` = inline); the result is bit-identical for
/// every value because blocks are fixed [`BLOCK`]-sized row ranges
/// concatenated in record order. Errors when the batch dimensionality
/// disagrees with the mixture. An empty batch yields empty scores.
pub fn score(mixture: &Mixture, batch: &Batch, threads: usize) -> Result<Scores> {
    let k = mixture.k();
    if batch.is_empty() {
        return Ok(Scores { k, labels: Vec::new(), log_pdf: Vec::new(), responsibilities: Vec::new() });
    }
    if batch.dim() != mixture.dim() {
        return Err(GmmError::DimensionMismatch { expected: mixture.dim(), got: batch.dim() });
    }
    let n = batch.len();
    let blocks = n.div_ceil(BLOCK);
    let workers = resolve_workers(threads);
    let parts = par_block_map(
        blocks,
        workers,
        MixtureScratch::default,
        |scratch, block| {
            let start = block * BLOCK;
            let count = BLOCK.min(n - start);
            let mut labels = Vec::with_capacity(count);
            let mut log_pdf = Vec::with_capacity(count);
            let mut responsibilities = Vec::with_capacity(count * k);
            score_block(
                mixture,
                batch.rows(start, count),
                count,
                scratch,
                &mut labels,
                &mut log_pdf,
                &mut responsibilities,
            );
            (labels, log_pdf, responsibilities)
        },
    );
    let mut labels = Vec::with_capacity(n);
    let mut log_pdf = Vec::with_capacity(n);
    let mut responsibilities = Vec::with_capacity(n * k);
    for (l, p, r) in parts {
        labels.extend_from_slice(&l);
        log_pdf.extend_from_slice(&p);
        responsibilities.extend_from_slice(&r);
    }
    Ok(Scores { k, labels, log_pdf, responsibilities })
}

/// Scalar reference scoring of one record: `(hard label, ln p(x),
/// responsibilities)` via the per-record [`Mixture`] methods. This is the
/// loop [`score`] replaces; the batched kernel reproduces it bit for bit.
pub fn score_record(mixture: &Mixture, x: &Vector) -> (usize, f64, Vec<f64>) {
    (mixture.map_component(x), mixture.log_pdf(x), mixture.posteriors(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;
    use cludistream_linalg::Matrix;
    use cludistream_rng::{Rng, StdRng};

    fn dense_mixture(d: usize) -> Mixture {
        let mut cov = Matrix::identity(d);
        for i in 0..d {
            cov[(i, i)] = 1.25 + i as f64 * 0.5;
            for j in 0..d {
                if i != j {
                    cov[(i, j)] = 0.05;
                }
            }
        }
        let far: Vector = (0..d).map(|i| 6.0 + i as f64).collect();
        Mixture::new(
            vec![
                Gaussian::new(Vector::zeros(d), cov).unwrap(),
                Gaussian::spherical(far, 1.5).unwrap(),
            ],
            vec![0.7, 0.3],
        )
        .unwrap()
    }

    fn random_records(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vector> {
        (0..n).map(|_| (0..d).map(|_| rng.gen::<f64>() * 12.0 - 3.0).collect()).collect()
    }

    #[test]
    fn batched_scores_bit_identical_to_scalar_loop() {
        let m = dense_mixture(4);
        let mut rng = StdRng::seed_from_u64(71);
        // Spans several blocks with a ragged tail.
        let recs = random_records(&mut rng, 2 * BLOCK + 31, 4);
        let batch = Batch::from_records(&recs);
        let scores = score(&m, &batch, 1).unwrap();
        assert_eq!(scores.len(), recs.len());
        assert_eq!(scores.k(), 2);
        for (i, x) in recs.iter().enumerate() {
            let (label, lp, resp) = score_record(&m, x);
            assert_eq!(scores.labels()[i] as usize, label, "record {i}");
            assert_eq!(scores.log_pdf()[i].to_bits(), lp.to_bits(), "record {i}");
            for (a, b) in scores.responsibilities(i).iter().zip(&resp) {
                assert_eq!(a.to_bits(), b.to_bits(), "record {i}");
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let m = dense_mixture(3);
        let mut rng = StdRng::seed_from_u64(72);
        let recs = random_records(&mut rng, 3 * BLOCK + 7, 3);
        let batch = Batch::from_records(&recs);
        let baseline = score(&m, &batch, 1).unwrap();
        for threads in [2usize, 4, 8, 0] {
            let got = score(&m, &batch, threads).unwrap();
            assert_eq!(got, baseline, "threads={threads}");
        }
    }

    #[test]
    fn responsibilities_form_a_simplex() {
        let m = dense_mixture(2);
        let mut rng = StdRng::seed_from_u64(73);
        let recs = random_records(&mut rng, 500, 2);
        let batch = Batch::from_records(&recs);
        let scores = score(&m, &batch, 1).unwrap();
        for i in 0..scores.len() {
            let row = scores.responsibilities(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9, "record {i}");
            assert!(row.iter().all(|&r| (0.0..=1.0).contains(&r)), "record {i}");
        }
    }

    #[test]
    fn underflow_falls_back_to_uniform() {
        let m = dense_mixture(1);
        let batch = Batch::from_records(&[Vector::from_slice(&[1e9])]);
        let scores = score(&m, &batch, 1).unwrap();
        let row = scores.responsibilities(0);
        let (_, lp, resp) = score_record(&m, &Vector::from_slice(&[1e9]));
        assert_eq!(scores.log_pdf()[0].to_bits(), lp.to_bits());
        for (a, b) in row.iter().zip(&resp) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn avg_log_likelihood_matches_batch_kernel() {
        let m = dense_mixture(2);
        let mut rng = StdRng::seed_from_u64(74);
        let recs = random_records(&mut rng, BLOCK + 9, 2);
        let batch = Batch::from_records(&recs);
        let scores = score(&m, &batch, 1).unwrap();
        let direct = m.avg_log_likelihood_batch(&batch, &mut MixtureScratch::default());
        assert_eq!(scores.avg_log_likelihood().to_bits(), direct.to_bits());
    }

    #[test]
    fn empty_and_mismatched_inputs() {
        let m = dense_mixture(2);
        let empty = score(&m, &Batch::from_records(&[]), 1).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.avg_log_likelihood(), f64::NEG_INFINITY);
        let bad = Batch::from_records(&[Vector::zeros(3)]);
        assert!(matches!(
            score(&m, &bad, 1),
            Err(GmmError::DimensionMismatch { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn labels_pick_the_near_component() {
        let m = dense_mixture(2);
        let recs = vec![Vector::zeros(2), Vector::from_slice(&[6.0, 7.0])];
        let batch = Batch::from_records(&recs);
        let scores = score(&m, &batch, 1).unwrap();
        assert_eq!(scores.labels(), &[0, 1]);
    }
}
