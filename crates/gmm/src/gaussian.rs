use crate::batch::DensityScratch;
use crate::{GmmError, Result};
use cludistream_linalg::{cholesky_regularized, Cholesky, Matrix, Vector};
use cludistream_rng::Rng;

/// Natural log of 2π, used by the Gaussian normalizer.
pub(crate) const LN_2PI: f64 = 1.8378770664093453;

/// A d-dimensional Gaussian `N(μ, Σ)` with a cached Cholesky factorization.
///
/// This is the component model of the paper's mixtures (Sec. 3.1):
///
/// ```text
/// p(x|j) = (2π)^(-d/2) |Σ|^(-1/2) exp(-½ (x-μ)ᵀ Σ⁻¹ (x-μ))
/// ```
///
/// Construction factorizes Σ once (ridge-regularizing when the estimate is
/// degenerate) so that density evaluation is two triangular solves, and
/// `log|Σ|` never materializes the determinant.
#[derive(Debug, Clone)]
pub struct Gaussian {
    mean: Vector,
    cov: Matrix,
    chol: Cholesky,
    /// `-½ (d ln 2π + log|Σ|)` — the log normalizing constant.
    log_norm: f64,
    /// Ridge added to the diagonal during factorization (0 when none).
    ridge: f64,
    /// Inverse variances when Σ is exactly diagonal: the O(d) density
    /// fast path (dense Cholesky solves are O(d²) per evaluation, which
    /// dominates high-dimensional streaming; see Theorem 3's d-vector
    /// representation).
    inv_diag: Option<Vec<f64>>,
}

impl Gaussian {
    /// Base ridge (relative to the covariance scale) used when a covariance
    /// estimate fails to factorize.
    pub const BASE_RIDGE: f64 = 1e-9;

    /// Creates a Gaussian from a mean and covariance. The covariance is
    /// symmetrized, then factorized with escalating ridge regularization;
    /// a covariance that cannot be repaired is an error.
    pub fn new(mean: Vector, mut cov: Matrix) -> Result<Self> {
        let d = mean.dim();
        if cov.rows() != d || cov.cols() != d {
            return Err(GmmError::DimensionMismatch { expected: d, got: cov.rows() });
        }
        if d == 0 {
            return Err(GmmError::InvalidParameter { name: "mean", constraint: "dimension > 0" });
        }
        if !mean.is_finite() || !cov.is_finite() {
            return Err(GmmError::InvalidParameter {
                name: "mean/cov",
                constraint: "all entries finite",
            });
        }
        cov.symmetrize();
        let (chol, ridge) = cholesky_regularized(&cov, Self::BASE_RIDGE, 14)?;
        if ridge > 0.0 {
            // Keep the stored covariance consistent with the factorization.
            cov.add_ridge(ridge);
        }
        let log_norm = -0.5 * (d as f64 * LN_2PI + chol.log_det());
        // Detect exactly-diagonal covariances and cache inverse variances
        // for the O(d) density path.
        let mut diagonal = true;
        'outer: for i in 0..d {
            for j in 0..d {
                if i != j && cov[(i, j)] != 0.0 {
                    diagonal = false;
                    break 'outer;
                }
            }
        }
        let inv_diag = diagonal.then(|| cov.diag().iter().map(|&v| 1.0 / v).collect());
        Ok(Gaussian { mean, cov, chol, log_norm, ridge, inv_diag })
    }

    /// Creates an isotropic Gaussian `N(mean, var·I)`.
    pub fn spherical(mean: Vector, var: f64) -> Result<Self> {
        if var <= 0.0 || !var.is_finite() {
            return Err(GmmError::InvalidParameter { name: "var", constraint: "var > 0" });
        }
        let d = mean.dim();
        Gaussian::new(mean, Matrix::from_diag(&vec![var; d]))
    }

    /// Creates an axis-aligned Gaussian from per-dimension variances.
    pub fn diagonal(mean: Vector, vars: &[f64]) -> Result<Self> {
        if vars.len() != mean.dim() {
            return Err(GmmError::DimensionMismatch { expected: mean.dim(), got: vars.len() });
        }
        Gaussian::new(mean, Matrix::from_diag(vars))
    }

    /// Dimensionality d.
    pub fn dim(&self) -> usize {
        self.mean.dim()
    }

    /// Borrow the mean vector μ.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Borrow the covariance matrix Σ (including any regularization ridge).
    pub fn cov(&self) -> &Matrix {
        &self.cov
    }

    /// Borrow the cached Cholesky factorization of Σ.
    pub fn chol(&self) -> &Cholesky {
        &self.chol
    }

    /// Ridge added during construction (0.0 when the covariance was already
    /// positive definite). Non-zero values signal a degenerate estimate.
    pub fn ridge(&self) -> f64 {
        self.ridge
    }

    /// `log |Σ|`.
    pub fn log_det_cov(&self) -> f64 {
        self.chol.log_det()
    }

    /// Log density `ln p(x)`.
    pub fn log_pdf(&self, x: &Vector) -> f64 {
        self.log_norm - 0.5 * self.mahalanobis_sq(x)
    }

    /// Density `p(x)` (prefer [`Self::log_pdf`] in accumulations).
    pub fn pdf(&self, x: &Vector) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Batched [`Self::log_pdf`]: scores `out.len()` records stored
    /// row-major in `rows` (`rows[b*d .. (b+1)*d]` is record `b`), writing
    /// `out[b] = ln p(x_b)`.
    ///
    /// Bit-identical to calling `log_pdf` per record — both paths perform
    /// the same floating-point operations in the same order. The win is
    /// mechanical: the diagonal fast path streams one flat buffer, and
    /// the dense path makes a single pass over the Cholesky factor per
    /// block (one `solve_lower_batch`) instead of one pass per record,
    /// with the solve buffer reused via `scratch`.
    pub fn log_pdf_batch(&self, rows: &[f64], out: &mut [f64], scratch: &mut DensityScratch) {
        let d = self.dim();
        let count = out.len();
        assert_eq!(rows.len(), count * d, "log_pdf_batch: rows/out length mismatch");
        let mean = self.mean.as_slice();
        match &self.inv_diag {
            Some(inv) => {
                for (x, o) in rows.chunks_exact(d).zip(out.iter_mut()) {
                    let mut acc = 0.0;
                    for i in 0..d {
                        let diff = x[i] - mean[i];
                        acc += diff * diff * inv[i];
                    }
                    *o = self.log_norm - 0.5 * acc;
                }
            }
            None => {
                // Dimension-major transpose of the centered records:
                // buf[i*count + b] = x_b[i] - μ_i, then one forward solve
                // across the whole block.
                let buf = scratch.buf(d * count);
                for (b, x) in rows.chunks_exact(d).enumerate() {
                    for i in 0..d {
                        buf[i * count + b] = x[i] - mean[i];
                    }
                }
                self.chol.solve_lower_batch(buf, count);
                for (b, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for i in 0..d {
                        let y = buf[i * count + b];
                        acc += y * y;
                    }
                    *o = self.log_norm - 0.5 * acc;
                }
            }
        }
    }

    /// Squared Mahalanobis distance `(x-μ)ᵀ Σ⁻¹ (x-μ)`. Uses the O(d)
    /// fast path for diagonal covariances, the Cholesky solve otherwise.
    pub fn mahalanobis_sq(&self, x: &Vector) -> f64 {
        match &self.inv_diag {
            Some(inv) => {
                let mut acc = 0.0;
                for i in 0..inv.len() {
                    let diff = x[i] - self.mean[i];
                    acc += diff * diff * inv[i];
                }
                acc
            }
            None => self.chol.mahalanobis_sq(x, &self.mean),
        }
    }

    /// True when the covariance is exactly diagonal (the O(d) density path
    /// is active).
    pub fn is_diagonal(&self) -> bool {
        self.inv_diag.is_some()
    }

    /// Precision matrix `Σ⁻¹` (computed on demand; the paper's merge and
    /// split criteria need explicit precision sums).
    pub fn precision(&self) -> Matrix {
        self.chol.inverse()
    }

    /// Draws one sample `μ + L z` with `z ~ N(0, I)` via Box–Muller.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let z: Vector = (0..self.dim()).map(|_| sample_standard_normal(rng)).collect();
        &self.mean + &self.chol.apply_l(&z)
    }

    /// Squared Mahalanobis distance between the means of `self` and `other`
    /// under the summed precisions, `(μ₁-μ₂)ᵀ(Σ₁⁻¹+Σ₂⁻¹)(μ₁-μ₂)` — the
    /// quantity inside the paper's `M_merge` / `M_split` criteria (Eqs. 5, 6).
    pub fn precision_weighted_mean_dist(&self, other: &Gaussian) -> f64 {
        let diff = &self.mean - &other.mean;
        // (Σ₁⁻¹+Σ₂⁻¹)v = Σ₁⁻¹v + Σ₂⁻¹v: two solves, no explicit inverses.
        let a = self.chol.solve(&diff);
        let b = other.chol.solve(&diff);
        diff.dot(&(&a + &b))
    }
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// Implemented here (rather than pulling in `rand_distr`) because sampling
/// is the only distributional primitive the workspace needs.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln(u1) to -inf.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cludistream_rng::StdRng;

    fn standard_2d() -> Gaussian {
        Gaussian::new(Vector::zeros(2), Matrix::identity(2)).unwrap()
    }

    #[test]
    fn standard_normal_density_at_mean() {
        let g = standard_2d();
        // (2π)^-1 at the mean for d=2.
        let expect = 1.0 / (2.0 * std::f64::consts::PI);
        assert!((g.pdf(&Vector::zeros(2)) - expect).abs() < 1e-12);
    }

    #[test]
    fn univariate_matches_closed_form() {
        let g = Gaussian::new(Vector::from_slice(&[1.0]), Matrix::from_diag(&[4.0])).unwrap();
        let x = Vector::from_slice(&[3.0]);
        // N(1, 4) at x=3: (1/(2√(2π))) exp(-0.5) — σ=2.
        let expect = (1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())) * (-0.5f64).exp();
        assert!((g.pdf(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_consistent_with_pdf() {
        let g = Gaussian::new(
            Vector::from_slice(&[0.5, -0.5]),
            Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.0]]),
        )
        .unwrap();
        let x = Vector::from_slice(&[1.0, 1.0]);
        assert!((g.log_pdf(&x).exp() - g.pdf(&x)).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_at_mean_is_zero() {
        let g = standard_2d();
        assert_eq!(g.mahalanobis_sq(&Vector::zeros(2)), 0.0);
    }

    #[test]
    fn degenerate_covariance_gets_ridged() {
        let cov = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        let g = Gaussian::new(Vector::zeros(2), cov).unwrap();
        assert!(g.ridge() > 0.0);
        assert!(g.log_pdf(&Vector::zeros(2)).is_finite());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = Gaussian::new(Vector::zeros(2), Matrix::identity(3));
        assert!(matches!(r, Err(GmmError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_rejected() {
        let r = Gaussian::new(Vector::from_slice(&[f64::NAN]), Matrix::identity(1));
        assert!(r.is_err());
    }

    #[test]
    fn spherical_and_diagonal_constructors() {
        let s = Gaussian::spherical(Vector::zeros(3), 2.0).unwrap();
        assert_eq!(s.cov()[(1, 1)], 2.0);
        assert_eq!(s.cov()[(0, 1)], 0.0);
        let d = Gaussian::diagonal(Vector::zeros(2), &[1.0, 9.0]).unwrap();
        assert_eq!(d.cov()[(1, 1)], 9.0);
        assert!(Gaussian::spherical(Vector::zeros(2), -1.0).is_err());
        assert!(Gaussian::diagonal(Vector::zeros(2), &[1.0]).is_err());
    }

    #[test]
    fn sample_statistics_match_parameters() {
        let g = Gaussian::new(
            Vector::from_slice(&[2.0, -1.0]),
            Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 2.0]]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut mean = Vector::zeros(2);
        let mut cov = Matrix::zeros(2, 2);
        let samples: Vec<Vector> = (0..n).map(|_| g.sample(&mut rng)).collect();
        for s in &samples {
            mean += s;
        }
        mean.scale(1.0 / n as f64);
        for s in &samples {
            let d = s - &mean;
            cov.rank1_update(1.0 / n as f64, &d);
        }
        assert!((mean[0] - 2.0).abs() < 0.05, "mean {mean}");
        assert!((mean[1] + 1.0).abs() < 0.05, "mean {mean}");
        assert!((cov[(0, 0)] - 1.0).abs() < 0.1);
        assert!((cov[(0, 1)] - 0.5).abs() < 0.1);
        assert!((cov[(1, 1)] - 2.0).abs() < 0.1);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn precision_weighted_mean_dist_symmetric_and_known() {
        let a = Gaussian::spherical(Vector::from_slice(&[0.0]), 1.0).unwrap();
        let b = Gaussian::spherical(Vector::from_slice(&[2.0]), 1.0).unwrap();
        // (Σa⁻¹+Σb⁻¹) = 2, diff = 2 → 2*2*2 = 8.
        assert!((a.precision_weighted_mean_dist(&b) - 8.0).abs() < 1e-12);
        assert!(
            (a.precision_weighted_mean_dist(&b) - b.precision_weighted_mean_dist(&a)).abs()
                < 1e-12
        );
    }

    #[test]
    fn precision_matches_inverse() {
        let g = Gaussian::new(
            Vector::zeros(2),
            Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]),
        )
        .unwrap();
        let p = g.precision();
        let prod = g.cov().matmul(&p);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_dense() {
        let dense = Gaussian::new(
            Vector::from_slice(&[1.0, -2.0, 0.5]),
            Matrix::from_rows(&[&[2.0, 0.1, 0.0], &[0.1, 1.0, 0.0], &[0.0, 0.0, 3.0]]),
        )
        .unwrap();
        assert!(!dense.is_diagonal());
        let diag = Gaussian::diagonal(Vector::from_slice(&[1.0, -2.0, 0.5]), &[2.0, 1.0, 3.0])
            .unwrap();
        assert!(diag.is_diagonal());
        // The fast path must agree with the Cholesky path bit-for-bit-ish.
        let x = Vector::from_slice(&[0.3, 1.7, -2.0]);
        let via_chol = diag.chol().mahalanobis_sq(&x, diag.mean());
        assert!((diag.mahalanobis_sq(&x) - via_chol).abs() < 1e-12);
        assert!((diag.log_pdf(&x).exp() - diag.pdf(&x)).abs() < 1e-15);
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(Gaussian::new(Vector::zeros(0), Matrix::zeros(0, 0)).is_err());
    }
}
