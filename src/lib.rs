//! Umbrella crate for the CluDistream reproduction workspace.
//!
//! Re-exports the public crates so the workspace-level integration tests and
//! examples have a single import root. Library users should depend on the
//! individual crates (`cludistream`, `cludistream-gmm`, ...) directly.

pub use cludistream;
pub use cludistream_baselines as baselines;
pub use cludistream_datagen as datagen;
pub use cludistream_gmm as gmm;
pub use cludistream_linalg as linalg;
pub use cludistream_obs as obs;
pub use cludistream_optimize as optimize;
pub use cludistream_rng as rng;
pub use cludistream_simnet as simnet;
pub use cludistream_wire as wire;
