//! Sliding-window clustering (paper Sec. 7): only the last W chunks count.
//! Expired chunks emit deletions ("model ID with negative weight") that a
//! coordinator applies to its mixture, dropping fully-expired models.
//!
//! ```text
//! cargo run --release --example sliding_window
//! ```

use cludistream::{Config, Coordinator, CoordinatorConfig, Message, SlidingWindowSite};
use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig};
use cludistream_gmm::ChunkParams;

fn main() {
    let config = Config {
        dim: 1,
        k: 2,
        chunk: ChunkParams { epsilon: 0.1, delta: 0.01 },
        seed: 31,
        ..Default::default()
    };
    let window_chunks = 6;
    let mut site =
        SlidingWindowSite::new(config, window_chunks).expect("valid config");
    let chunk_size = site.site().chunk_size();
    println!("window = {window_chunks} chunks x {chunk_size} records");

    let mut coordinator = Coordinator::new(CoordinatorConfig::default()).unwrap();

    let mut stream = EvolvingStream::new(EvolvingStreamConfig {
        dim: 1,
        k: 2,
        p_new: 0.6,
        regime_len: 3 * chunk_size,
        seed: 37,
        ..Default::default()
    });

    let updates = 40 * chunk_size;
    for i in 0..updates {
        let x = stream.next().expect("infinite stream");
        site.push(x).expect("clean records");

        // Forward the window's protocol traffic to the coordinator.
        for event in site.drain_events() {
            coordinator.apply(&Message::from_site_event(0, event)).expect("valid update");
        }
        for (model, count) in site.drain_deletions() {
            let del = Message::Delete { site: 0, model, count_delta: count };
            // Deletions may refer to models the coordinator already dropped.
            let _ = coordinator.apply(&del);
        }

        if (i + 1) % (10 * chunk_size) == 0 {
            let models = site.site().models().len();
            println!(
                "after {:>6} records: {} models on site, {} in window, \
                 {} groups at coordinator",
                i + 1,
                models,
                site.chunks_in_window(),
                coordinator.group_count()
            );
        }
    }

    println!("\n--- window vs landmark ---");
    match site.window_mixture() {
        Ok(w) => {
            println!("window mixture ({} components):", w.k());
            for (c, wt) in w.components().iter().zip(w.weights()) {
                println!("  centre {:+.2}, weight {:.2}", c.mean()[0], wt);
            }
        }
        Err(e) => println!("window empty: {e}"),
    }
    println!(
        "models retained on site: {} (fully expired models are dropped)",
        site.site().models().len()
    );
    println!(
        "coordinator: {} groups over {} components, total weight {:.0}",
        coordinator.group_count(),
        coordinator.component_count(),
        coordinator.total_weight()
    );

}
