//! Sensor fusion in a tree-structured network (paper Sec. 7): leaf sensors
//! observe noisy, sometimes-incomplete readings; internal aggregation
//! nodes run CluDistream over their children's synopses and push summaries
//! upward only on change.
//!
//! ```text
//! cargo run --release --example sensor_fusion
//! ```

use cludistream::{Config, CoordinatorConfig, MultiLayerNetwork};
use cludistream_datagen::{impute_missing, EvolvingStream, EvolvingStreamConfig, MissingValueInjector, NoiseInjector};
use cludistream_gmm::ChunkParams;
use cludistream_linalg::Vector;

fn main() {
    // A 2-layer tree: root 0 aggregates two field gateways (1, 2), each
    // fusing three sensors.
    let parent = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
    let site_config = Config {
        dim: 2,
        k: 2,
        chunk: ChunkParams { epsilon: 0.1, delta: 0.01 },
        seed: 5,
        ..Default::default()
    };
    let mut net = MultiLayerNetwork::new(parent, site_config, CoordinatorConfig::default())
        .expect("valid tree");
    let leaves = net.leaf_ids();
    println!("tree: root 0, gateways 1-2, sensors {leaves:?}");

    // Each sensor stream: an evolving 2-d mixture + 5% uniform noise + 10%
    // missing coordinates, repaired by running-mean imputation — the
    // paper's "noisy or incomplete data records".
    let mut streams: Vec<Box<dyn Iterator<Item = Vector>>> = leaves
        .iter()
        .map(|&leaf| {
            let base = EvolvingStream::new(EvolvingStreamConfig {
                dim: 2,
                k: 2,
                p_new: 0.2,
                regime_len: 1500,
                seed: 100 + leaf as u64,
                ..Default::default()
            });
            let noisy = NoiseInjector::new(base, 0.05, (-15.0, 15.0), 200 + leaf as u64);
            let gappy = MissingValueInjector::new(noisy, 0.10, 300 + leaf as u64);
            Box::new(impute_missing(gappy)) as Box<dyn Iterator<Item = Vector>>
        })
        .collect();

    // Interleave the sensors round-robin, as a field deployment would.
    let updates_per_sensor = 8_000;
    for step in 0..updates_per_sensor {
        for (slot, &leaf) in leaves.iter().enumerate() {
            let x = streams[slot].next().expect("infinite stream");
            net.push(leaf, x).expect("imputed records are dense");
        }
        if (step + 1) % 2000 == 0 {
            println!(
                "after {:>5} readings/sensor: upstream traffic = {} bytes in {} messages",
                step + 1,
                net.bytes_up(),
                net.messages_up()
            );
        }
    }

    println!("\n--- fused model at the root ---");
    match net.root_mixture() {
        Ok(m) => {
            for (i, (c, w)) in m.components().iter().zip(m.weights()).enumerate() {
                println!(
                    "  mode {i}: weight {:.3}, centre ({:+.2}, {:+.2})",
                    w,
                    c.mean()[0],
                    c.mean()[1]
                );
            }
        }
        Err(e) => println!("no model: {e}"),
    }

    println!("\n--- per-sensor view ---");
    for &leaf in &leaves {
        let site = net.leaf(leaf).expect("leaf exists");
        let s = site.stats();
        println!(
            "  sensor {leaf}: {} chunks, {} distributions, {} re-clusterings",
            s.chunks,
            site.models().len(),
            s.clustered
        );
    }
}
