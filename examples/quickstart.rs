//! Quickstart: run one CluDistream remote site over an evolving synthetic
//! stream and watch the test-and-cluster strategy at work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cludistream::{ChunkOutcome, Config, RemoteSite};
use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig};
use cludistream_gmm::ChunkParams;

fn main() {
    // Paper-style parameters, scaled down to d=2 so the run is quick.
    let config = Config {
        dim: 2,
        k: 3,
        chunk: ChunkParams { epsilon: 0.05, delta: 0.01 },
        c_max: 4,
        seed: 7,
        ..Default::default()
    };
    let mut site = RemoteSite::new(config).expect("valid config");
    println!("chunk size M = {} records (Theorem 1)", site.chunk_size());

    // An evolving stream: every 2000 records the generating mixture is
    // redrawn with probability 0.3.
    let mut stream = EvolvingStream::new(EvolvingStreamConfig {
        dim: 2,
        k: 3,
        p_new: 0.3,
        regime_len: 2000,
        seed: 42,
        ..Default::default()
    });

    let updates = 40_000;
    for _ in 0..updates {
        let record = stream.next().expect("infinite stream");
        if let Some(outcome) = site.push(record).expect("clean records") {
            let chunk = site.chunk_index() - 1;
            match outcome {
                ChunkOutcome::FitCurrent { j_fit } => {
                    println!("chunk {chunk:>3}: fits current model (J_fit = {j_fit:.4})");
                }
                ChunkOutcome::SwitchedTo { model, j_fit, tests } => {
                    println!(
                        "chunk {chunk:>3}: re-fit old model {model} after {tests} tests \
                         (J_fit = {j_fit:.4})"
                    );
                }
                ChunkOutcome::NewModel { model, tests } => {
                    println!(
                        "chunk {chunk:>3}: NEW distribution -> clustered into model {model} \
                         ({tests} tests failed)"
                    );
                }
            }
        }
    }

    println!("\n--- summary ---");
    let stats = site.stats();
    println!("records processed : {}", stats.records);
    println!("chunks            : {}", stats.chunks);
    println!("  fit current     : {}", stats.fit_current);
    println!("  re-fit old model: {}", stats.switched);
    println!("  EM clusterings  : {}", stats.clustered);
    println!("models in list    : {}", site.models().len());
    println!("true regimes seen : {}", stream.regime_id() + 1);
    println!("site memory       : {} bytes (Theorem 3)", site.memory_bytes());
    println!("\nevent table (chunk spans per model):");
    for e in site.events().entries_at(site.chunk_index().saturating_sub(1)) {
        println!("  chunks {:>3}..={:<3} -> model {}", e.start_chunk, e.end_chunk, e.model);
    }
    println!(
        "\nmessages queued for the coordinator: {} (stability = no traffic)",
        site.pending_events()
    );
}
