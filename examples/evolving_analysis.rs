//! Evolving analysis and change detection (paper Sec. 7): the event table
//! lets a user ask "what did the stream look like between chunks a and b?"
//! and the test-and-cluster strategy doubles as a change detector.
//!
//! ```text
//! cargo run --release --example evolving_analysis
//! ```

use cludistream::{horizon_mixture, ChangeDetector, ChangeKind, Config, RemoteSite};
use cludistream_datagen::{EvolvingStream, EvolvingStreamConfig};
use cludistream_gmm::ChunkParams;

fn main() {
    let config = Config {
        dim: 1,
        k: 2,
        chunk: ChunkParams { epsilon: 0.1, delta: 0.01 },
        seed: 17,
        ..Default::default()
    };
    let mut detector =
        ChangeDetector::new(RemoteSite::new(config).expect("valid config"));
    let chunk_size = detector.site().chunk_size();
    println!("chunk size M = {chunk_size}; detection delay <= one chunk (paper: M/2 expected)");

    let mut stream = EvolvingStream::new(EvolvingStreamConfig {
        dim: 1,
        k: 2,
        p_new: 0.5,
        regime_len: 4 * chunk_size,
        seed: 23,
        ..Default::default()
    });

    let updates = 60 * chunk_size;
    for _ in 0..updates {
        let x = stream.next().expect("infinite stream");
        if let Some(change) = detector.push(x).expect("clean records") {
            let kind = match change.kind {
                ChangeKind::Novel => "NOVEL distribution",
                ChangeKind::Recurrence => "recurrence of old model",
            };
            println!(
                "chunk {:>3} (record ~{}): {kind} -> model {}",
                change.chunk,
                change.chunk * chunk_size as u64,
                change.model
            );
        }
    }

    let site = detector.site();
    println!("\n--- detection vs ground truth ---");
    println!(
        "true regime switches : {} (generator history)",
        stream.history().len() - 1
    );
    println!(
        "detected changes     : {} novel + {} recurrences",
        detector.novel_count(),
        detector.recurrence_count()
    );

    println!("\n--- evolving analysis: models governing recent windows ---");
    let now = site.chunk_index().saturating_sub(1);
    for horizon in [4u64, 16, 64] {
        match horizon_mixture(site, horizon) {
            Ok(m) => {
                let centres: Vec<String> = m
                    .components()
                    .iter()
                    .zip(m.weights())
                    .map(|(c, w)| format!("{:+.1} (w={:.2})", c.mean()[0], w))
                    .collect();
                println!("  last {horizon:>2} chunks: {} components: {}", m.k(), centres.join(", "));
            }
            Err(e) => println!("  last {horizon:>2} chunks: {e}"),
        }
    }

    println!("\n--- full event table (what governed when) ---");
    for e in site.events().entries_at(now) {
        println!("  chunks {:>3}..={:<3} -> model {}", e.start_chunk, e.end_chunk, e.model);
    }
}
