//! Network monitoring: 20 telecom collection points stream net-flow
//! records to a central coordinator — the paper's motivating NFD scenario.
//!
//! Each site runs CluDistream's test-and-cluster strategy; the coordinator
//! merges the reported Gaussian mixtures into a global traffic model. The
//! run prints the per-second communication cost series (the paper's Fig. 2
//! measurement) and the final global model.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use cludistream::{Config, CoordinatorConfig, DriverConfig, RecordStream, Simulation};
use cludistream_datagen::{MinMaxNormalizer, NetflowConfig, NetflowGenerator};
use cludistream_gmm::ChunkParams;

fn main() {
    let sites = 20;
    let updates_per_site = 20_000u64;

    // Fit a shared normalizer on a warmup sample, as the paper normalizes
    // each NFD attribute.
    let mut warm = NetflowGenerator::new(NetflowConfig { seed: 999, ..Default::default() });
    let sample = warm.take_chunk(5_000);
    let normalizer = MinMaxNormalizer::fit(&sample);

    let streams: Vec<RecordStream> = (0..sites)
        .map(|i| {
            let gen = NetflowGenerator::new(NetflowConfig {
                seed: 1000 + i as u64,
                p_new: 0.05,
                ..Default::default()
            });
            let norm = normalizer.clone();
            Box::new(gen.map(move |r| norm.transform(&r))) as RecordStream
        })
        .collect();

    let config = DriverConfig {
        site: Config {
            dim: 6, // netflow attributes
            k: 5,
            chunk: ChunkParams { epsilon: 0.02, delta: 0.01 },
            c_max: 4,
            seed: 3,
            ..Default::default()
        },
        coordinator: CoordinatorConfig { max_groups: 8, ..Default::default() },
        records_per_second: 1000,
        batch: 100,
        ..Default::default()
    };

    println!("running {sites} sites x {updates_per_site} flow records each ...");
    let report = Simulation::star(sites)
        .with_driver_config(config)
        .with_streams(streams)
        .with_updates_per_site(updates_per_site)
        .run()
        .expect("simulation runs");

    println!("\n--- communication (the Fig. 2 measurement) ---");
    println!("total bytes    : {}", report.comm.total_bytes());
    println!("total messages : {}", report.comm.total_messages());
    let cum = report.comm.cumulative_per_second();
    for (sec, bytes) in cum.iter().enumerate().step_by(cum.len().div_ceil(10).max(1)) {
        println!("  t = {sec:>4}s   cumulative bytes = {bytes}");
    }

    println!("\n--- per-site processing ---");
    let total_chunks: u64 = report.site_stats.iter().map(|s| s.chunks).sum();
    let total_em: u64 = report.site_stats.iter().map(|s| s.clustered).sum();
    println!("chunks processed   : {total_chunks}");
    println!("EM clusterings     : {total_em} ({:.1}% of chunks)", 100.0 * total_em as f64 / total_chunks.max(1) as f64);
    println!("avg site memory    : {} bytes", report.site_memory.iter().sum::<usize>() / sites);

    println!("\n--- global traffic model at the coordinator ---");
    match report.global {
        Some(global) => {
            println!("{} dense regions over {} site models", global.k(), report.coordinator_groups);
            for (i, (c, w)) in global.components().iter().zip(global.weights()).enumerate() {
                let mean = c.mean();
                println!(
                    "  region {i}: weight {:.3}, dst-port≈{:.2}, packets≈{:.2}, bytes≈{:.2} (normalized)",
                    w, mean[3], mean[4], mean[5]
                );
            }
        }
        None => println!("no model reported (stream too short)"),
    }
}
