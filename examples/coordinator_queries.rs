//! Mining queries at the coordinator: dense regions, soft membership, and
//! anomaly checks over the union of all streams — the "user mining
//! request" surface of the paper's problem statement, including the
//! motivating "80% probability of attack" style of answer.
//!
//! ```text
//! cargo run --release --example coordinator_queries
//! ```

use cludistream::{Config, Coordinator, CoordinatorConfig, Message, RemoteSite};
use cludistream_gmm::{ChunkParams, Gaussian, Mixture};
use cludistream_linalg::Vector;
use cludistream_rng::StdRng;

fn main() {
    // Three sites observing overlapping traffic classes around three
    // centres; one class is twice as heavy at site 2.
    let config = Config {
        dim: 2,
        k: 2,
        chunk: ChunkParams { epsilon: 0.1, delta: 0.01 },
        seed: 9,
        ..Default::default()
    };
    let mut coordinator = Coordinator::new(CoordinatorConfig {
        max_groups: 4,
        refine_merges: true,
        ..Default::default()
    }).unwrap();

    let site_mixtures = [
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.0, 0.0]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[12.0, 0.0]), 1.0).unwrap(),
            ],
            vec![0.5, 0.5],
        )
        .unwrap(),
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[0.5, 0.5]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[0.0, 12.0]), 1.0).unwrap(),
            ],
            vec![0.5, 0.5],
        )
        .unwrap(),
        Mixture::new(
            vec![
                Gaussian::spherical(Vector::from_slice(&[12.0, 0.5]), 1.0).unwrap(),
                Gaussian::spherical(Vector::from_slice(&[0.2, 11.5]), 1.0).unwrap(),
            ],
            vec![2.0, 1.0],
        )
        .unwrap(),
    ];

    for (i, truth) in site_mixtures.iter().enumerate() {
        let mut site = RemoteSite::new(config.clone()).expect("valid config");
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        for _ in 0..(2 * site.chunk_size()) {
            site.push(truth.sample(&mut rng)).expect("clean records");
        }
        for ev in site.drain_events() {
            coordinator
                .apply(&Message::from_site_event(i as u32, ev))
                .expect("valid update");
        }
        println!(
            "site {i}: {} chunks processed, {} model(s) reported",
            site.stats().chunks,
            site.models().len()
        );
    }

    println!("\n--- dense regions over the union of streams ---");
    let regions = coordinator.dense_regions().expect("coordinator has models");
    for (i, r) in regions.iter().enumerate() {
        println!(
            "  region {i}: centre ({:+.1}, {:+.1}), weight {:.2}, spread ({:.2}, {:.2}), \
             merged from {} site components",
            r.center[0], r.center[1], r.weight, r.spread[0], r.spread[1], r.member_components
        );
    }

    println!("\n--- soft membership queries (the paper's '80% attacked' answer) ---");
    for probe in [[0.0, 0.0], [6.0, 0.0], [11.0, 1.0], [0.0, 11.0]] {
        let x = Vector::from_slice(&probe);
        let membership = coordinator.membership(&x).expect("models exist");
        let best = membership
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "  record ({:+5.1}, {:+5.1}) -> region {} with probability {:.1}%  (density {:.5})",
            probe[0],
            probe[1],
            best.0,
            best.1 * 100.0,
            coordinator.density_at(&x).unwrap()
        );
    }

    println!("\n--- anomaly checks (Mahalanobis > 3σ from every region) ---");
    for probe in [[0.5, 0.2], [25.0, 25.0], [6.0, 6.0]] {
        let x = Vector::from_slice(&probe);
        let outlier = coordinator.is_outlier(&x, 9.0).expect("models exist");
        println!(
            "  ({:+5.1}, {:+5.1}) -> {}",
            probe[0],
            probe[1],
            if outlier { "OUTLIER" } else { "normal" }
        );
    }
}
