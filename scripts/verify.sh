#!/usr/bin/env bash
# Tier-1 verification gate: build, test, and document the workspace with no
# network access and warnings denied. This is the command CI and ROADMAP.md
# mean by "tier-1 verify" — it must pass on a machine with an empty registry
# cache, which is what keeps the zero-external-crates policy honest.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export RUSTDOCFLAGS="-D warnings"

cargo build --release --offline
cargo test -q --offline
cargo doc --no-deps -q --offline

# Telemetry smoke test: the default `metrics` workload must produce an event
# journal byte-identical to the committed golden fixture (journal entries are
# stamped with deterministic sim-time, never wall-clock).
journal="$(mktemp /tmp/cludistream_verify_XXXXXX.jsonl)"
trap 'rm -f "$journal"' EXIT
./target/release/cludistream metrics --journal "$journal" >/dev/null
diff -u crates/cli/tests/fixtures/metrics_journal.jsonl "$journal"

echo "verify: OK"
