#!/usr/bin/env bash
# Tier-1 verification gate: build, test, and document the workspace with no
# network access and warnings denied. This is the command CI and ROADMAP.md
# mean by "tier-1 verify" — it must pass on a machine with an empty registry
# cache, which is what keeps the zero-external-crates policy honest.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export RUSTDOCFLAGS="-D warnings"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo doc --no-deps -q --offline --workspace

# Telemetry smoke test: the default `metrics` workload must produce an event
# journal byte-identical to the committed golden fixture (journal entries are
# stamped with deterministic sim-time, never wall-clock).
journal="$(mktemp /tmp/cludistream_verify_XXXXXX.jsonl)"
trap 'rm -f "$journal"' EXIT
./target/release/cludistream metrics --journal "$journal" >/dev/null
diff -u crates/cli/tests/fixtures/metrics_journal.jsonl "$journal"

# Fault smoke test: the default `faults` workload — random loss, duplication,
# reordering, and one site crash/restart — must replay byte-identically
# against its committed journal fixture (fault decisions come from a
# dedicated seeded RNG stream).
./target/release/cludistream faults --journal "$journal" >/dev/null
diff -u crates/cli/tests/fixtures/faults_journal.jsonl "$journal"

# Trace smoke test: the traced faults workload must export a Perfetto
# (Chrome trace-event) JSON byte-identical to the committed golden fixture
# (span ids allocated in simulator dispatch order, sim-time stamps, virtual
# compute costs — no wall clock anywhere).
trace="$(mktemp /tmp/cludistream_verify_XXXXXX.json)"
trap 'rm -f "$journal" "$trace"' EXIT
./target/release/cludistream trace --faults --out "$trace" >/dev/null
diff -u crates/cli/tests/fixtures/trace_faults.json "$trace"

# Perf-regression smoke test: the parallel E-step must produce a
# bit-identical fit with threads=all vs threads=1, and parallelism must
# never cost more than 10% wall-clock. (On a single-core host both sides
# run the same inline path — a hard speedup floor would be unfalsifiable
# there, so the gate is slowdown-tolerance.)
./target/release/microbench --assert-parallel-speedup

# Panic-free public API gate: non-test code in the core and par crates
# must not use `unwrap()` or `panic!` — public entry points return
# Result<_, CludiError>, and the thread pool forwards worker panics via
# resume_unwind. Test modules (everything below `#[cfg(test)]`) and
# comment lines are exempt.
gate_failed=0
for f in $(find crates/core/src crates/par/src -name '*.rs'); do
    hits="$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
        | grep -nE '\.unwrap\(\)|panic!\(' || true)"
    if [ -n "$hits" ]; then
        echo "unwrap()/panic! in non-test code of $f:" >&2
        echo "$hits" >&2
        gate_failed=1
    fi
done
if [ "$gate_failed" -ne 0 ]; then
    echo "verify: FAILED (panic-free gate)" >&2
    exit 1
fi

echo "verify: OK"
