#!/usr/bin/env bash
# Tier-1 verification gate: build, test, and document the workspace with no
# network access and warnings denied. This is the command CI and ROADMAP.md
# mean by "tier-1 verify" — it must pass on a machine with an empty registry
# cache, which is what keeps the zero-external-crates policy honest.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export RUSTDOCFLAGS="-D warnings"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo doc --no-deps -q --offline --workspace

# Telemetry smoke test: the default `metrics` workload must produce an event
# journal byte-identical to the committed golden fixture (journal entries are
# stamped with deterministic sim-time, never wall-clock).
journal="$(mktemp /tmp/cludistream_verify_XXXXXX.jsonl)"
trap 'rm -f "$journal"' EXIT
./target/release/cludistream metrics --journal "$journal" >/dev/null
diff -u crates/cli/tests/fixtures/metrics_journal.jsonl "$journal"

# Fault smoke test: the default `faults` workload — random loss, duplication,
# reordering, and one site crash/restart — must replay byte-identically
# against its committed journal fixture (fault decisions come from a
# dedicated seeded RNG stream).
./target/release/cludistream faults --journal "$journal" >/dev/null
diff -u crates/cli/tests/fixtures/faults_journal.jsonl "$journal"

# Trace smoke test: the traced faults workload must export a Perfetto
# (Chrome trace-event) JSON byte-identical to the committed golden fixture
# (span ids allocated in simulator dispatch order, sim-time stamps, virtual
# compute costs — no wall clock anywhere).
trace="$(mktemp /tmp/cludistream_verify_XXXXXX.json)"
trap 'rm -f "$journal" "$trace"' EXIT
./target/release/cludistream trace --faults --out "$trace" >/dev/null
diff -u crates/cli/tests/fixtures/trace_faults.json "$trace"

# Socket smoke test: a real multi-process round — one coordinator and two
# site processes on 127.0.0.1 ephemeral ports — must reach the same
# merge/split decisions and emit the same per-site protocol events as the
# simulator running the identical workload (`metrics --reliable`). Only
# the "t" timestamps differ: sim-time on one side, wall-clock on the
# other, so both are stripped before the diff. Mid-round, the `status`
# subcommand must scrape a parseable Prometheus exposition with the
# fleet's metric families present.
smokedir="$(mktemp -d /tmp/cludistream_socket_XXXXXX)"
trap 'rm -f "$journal" "$trace"; rm -rf "$smokedir"' EXIT
./target/release/cludistream coordinator --sites 2 --deadline-s 120 \
    --port-file "$smokedir/port.txt" --snapshot-out "$smokedir/snap.bin" \
    > "$smokedir/coord.out" &
coord_pid=$!
for _ in $(seq 1 150); do
    [ -s "$smokedir/port.txt" ] && break
    kill -0 "$coord_pid" 2>/dev/null || { echo "coordinator died early" >&2; exit 1; }
    sleep 0.1
done
addr="$(cat "$smokedir/port.txt")"
./target/release/cludistream site --connect "$addr" --site 0 \
    --journal "$smokedir/tcp_site0.jsonl" >/dev/null &
# Mid-round status scrape: with site 1 not yet launched the round cannot
# end, so the scrape deterministically observes a live fleet. Site 0's
# telemetry rides its heartbeat cadence (500 ms), hence the poll.
scraped=0
for _ in $(seq 1 150); do
    if ./target/release/cludistream status --connect "$addr" \
            > "$smokedir/status.txt" 2>/dev/null \
        && grep -q '^cludistream_up 1$' "$smokedir/status.txt" \
        && grep -q 'cludistream_net_messages_total{site="0"}' "$smokedir/status.txt" \
        && grep -q 'cludistream_round_state{site="1"} 0' "$smokedir/status.txt"; then
        scraped=1
        break
    fi
    sleep 0.1
done
if [ "$scraped" -ne 1 ]; then
    echo "status scrape never showed the required metric families:" >&2
    cat "$smokedir/status.txt" >&2 || true
    exit 1
fi
# Every line of the exposition must parse: a `# TYPE` comment or a
# `name{labels} value` sample.
expo_re='^(# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|summary)|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf))$'
bad="$(grep -vE "$expo_re" "$smokedir/status.txt" || true)"
if [ -n "$bad" ]; then
    echo "status exposition has unparseable lines:" >&2
    echo "$bad" >&2
    exit 1
fi
./target/release/cludistream site --connect "$addr" --site 1 \
    --journal "$smokedir/tcp_site1.jsonl" >/dev/null &
wait
./target/release/cludistream metrics --reliable --journal "$smokedir/sim.jsonl" \
    > "$smokedir/sim.out"
grep '^coordinator groups:' "$smokedir/coord.out" > "$smokedir/coord_groups"
grep '^coordinator groups:' "$smokedir/sim.out" > "$smokedir/sim_groups"
diff -u "$smokedir/sim_groups" "$smokedir/coord_groups"
for i in 0 1; do
    grep -E '"event":"(ChunkTested|Reclustered|SynopsisSent)"' "$smokedir/sim.jsonl" \
        | grep "\"site\":$i" | sed 's/"t":[0-9]*/"t":_/' > "$smokedir/sim_site$i"
    grep -E '"event":"(ChunkTested|Reclustered|SynopsisSent)"' "$smokedir/tcp_site$i.jsonl" \
        | sed 's/"t":[0-9]*/"t":_/' > "$smokedir/tcp_site$i"
    diff -u "$smokedir/sim_site$i" "$smokedir/tcp_site$i"
done

# Scoring smoke test: the socket round's end-of-round checkpoint (written
# by `coordinator --snapshot-out` in the serving wire layout) must be
# consumable by `score` — batched Definition-1 assignment over a
# generated CSV, one assignment line per record plus the summary.
[ -s "$smokedir/snap.bin" ] || { echo "coordinator wrote no snapshot" >&2; exit 1; }
./target/release/cludistream generate --records 64 --dim 1 --k 2 --seed 5 \
    > "$smokedir/score_data.csv"
./target/release/cludistream score "$smokedir/score_data.csv" \
    --model "$smokedir/snap.bin" --dim 1 --threads 2 > "$smokedir/score.out"
grep -q '^snapshot: version ' "$smokedir/score.out"
grep -q '^records: 64$' "$smokedir/score.out"
[ "$(grep -cE '^  [0-9]+: component [0-9]+ \(log p ' "$smokedir/score.out")" -eq 64 ]
grep -q '^avg log likelihood: ' "$smokedir/score.out"

# Health smoke test: the quality plane's alerting endpoint end to end.
# Phase A — a coordinator with --alerts and no sites: the round-stalled
# rule must fire and `health` must exit non-zero (the probe contract).
# Phase B — a --quality site joins and finishes the round: health must
# recover to exit 0, and the status exposition must carry the
# quality-plane series and the mirrored alert verdicts.
./target/release/cludistream coordinator --sites 1 --deadline-s 120 \
    --alerts --quality --linger-ms 20000 --port-file "$smokedir/hport.txt" \
    > "$smokedir/hcoord.out" &
hcoord_pid=$!
for _ in $(seq 1 150); do
    [ -s "$smokedir/hport.txt" ] && break
    kill -0 "$hcoord_pid" 2>/dev/null || { echo "health coordinator died early" >&2; exit 1; }
    sleep 0.1
done
haddr="$(cat "$smokedir/hport.txt")"
if ./target/release/cludistream health --connect "$haddr" > "$smokedir/health_a.out"; then
    echo "health must exit non-zero while round-stalled fires:" >&2
    cat "$smokedir/health_a.out" >&2
    exit 1
fi
grep -q '^FIRING round-stalled' "$smokedir/health_a.out"
./target/release/cludistream site --connect "$haddr" --site 0 --quality >/dev/null &
hsite_pid=$!
healthy=0
for _ in $(seq 1 300); do
    if ./target/release/cludistream health --connect "$haddr" \
            > "$smokedir/health_b.out" 2>/dev/null; then
        healthy=1
        break
    fi
    sleep 0.1
done
if [ "$healthy" -ne 1 ]; then
    echo "health never recovered to exit 0:" >&2
    cat "$smokedir/health_b.out" >&2 || true
    exit 1
fi
grep -q 'round-stalled' "$smokedir/health_b.out"
grep -q 'alerts firing' "$smokedir/health_b.out"
hscraped=0
for _ in $(seq 1 300); do
    if ./target/release/cludistream status --connect "$haddr" \
            > "$smokedir/hstatus.txt" 2>/dev/null \
        && grep -q 'cludistream_quality_avg_ll{site="0"}' "$smokedir/hstatus.txt" \
        && grep -q '^cludistream_alert_round_stalled 0$' "$smokedir/hstatus.txt"; then
        hscraped=1
        break
    fi
    sleep 0.1
done
if [ "$hscraped" -ne 1 ]; then
    echo "status never showed the quality-plane series + alert gauges:" >&2
    cat "$smokedir/hstatus.txt" >&2 || true
    exit 1
fi
wait "$hsite_pid" "$hcoord_pid"

# Swarm smoke test (hierarchical aggregation). Phase A — the swarm
# bench at its smallest scale: the same 1000 synthetic synopses pushed
# through a flat star root and through a 100-aggregator tree. The
# binary self-gates that bytes arriving at the root shrink, the tree
# root's event table stays O(models) instead of O(sites), and the
# held-out average log-likelihood matches the star's.
./target/release/swarm --scales 1000 > "$smokedir/swarm.out"
grep -q 'gate sharding: .* ok$' "$smokedir/swarm.out"

# Phase B — a real 4-process loopback tree: a root coordinator serving
# one child (the aggregator), the aggregator serving two site
# processes. The sites run the identical workload as the star socket
# smoke above, so their journals must replay the same protocol events
# (sites cannot tell an aggregator from a coordinator), and the root
# must reach the same merge/split decisions as the simulator.
./target/release/cludistream coordinator --sites 1 --deadline-s 120 \
    --port-file "$smokedir/rport.txt" > "$smokedir/rcoord.out" &
rcoord_pid=$!
for _ in $(seq 1 150); do
    [ -s "$smokedir/rport.txt" ] && break
    kill -0 "$rcoord_pid" 2>/dev/null || { echo "tree root died early" >&2; exit 1; }
    sleep 0.1
done
raddr="$(cat "$smokedir/rport.txt")"
./target/release/cludistream aggregator --connect "$raddr" --site 0 \
    --child-base 0 --children 2 --deadline-s 120 \
    --port-file "$smokedir/aport.txt" > "$smokedir/agg.out" &
ragg_pid=$!
for _ in $(seq 1 150); do
    [ -s "$smokedir/aport.txt" ] && break
    kill -0 "$ragg_pid" 2>/dev/null || { echo "aggregator died early" >&2; exit 1; }
    sleep 0.1
done
aaddr="$(cat "$smokedir/aport.txt")"
./target/release/cludistream site --connect "$aaddr" --site 0 \
    --journal "$smokedir/agg_site0.jsonl" >/dev/null &
./target/release/cludistream site --connect "$aaddr" --site 1 \
    --journal "$smokedir/agg_site1.jsonl" >/dev/null &
wait
# The root behind the fan-in reaches the simulator's groups; one
# aggregator hop adds no churn (no resyncs, no evictions, >= 1 reduced
# update forwarded).
grep '^coordinator groups:' "$smokedir/rcoord.out" > "$smokedir/tree_groups"
diff -u "$smokedir/sim_groups" "$smokedir/tree_groups"
grep -q '^aggregator groups: 2$' "$smokedir/agg.out"
grep -qE '^flushes up: [1-9]' "$smokedir/agg.out"
grep -q 'resyncs: up 0 down 0 | evicted sites: \[\]' "$smokedir/agg.out"
for i in 0 1; do
    grep -E '"event":"(ChunkTested|Reclustered|SynopsisSent)"' "$smokedir/agg_site$i.jsonl" \
        | sed 's/"t":[0-9]*/"t":_/' > "$smokedir/agg_site$i"
    diff -u "$smokedir/sim_site$i" "$smokedir/agg_site$i"
done

# Perf-regression smoke test: the parallel E-step must produce a
# bit-identical fit with threads=all vs threads=1, and parallelism must
# never cost more than 10% wall-clock. (On a single-core host both sides
# run the same inline path — a hard speedup floor would be unfalsifiable
# there, so the gate is slowdown-tolerance.)
./target/release/microbench --assert-parallel-speedup

# Panic-free public API gate: non-test code in the core and par crates
# must not use `unwrap()` or `panic!` — public entry points return
# Result<_, CludiError>, and the thread pool forwards worker panics via
# resume_unwind. Test modules (everything below `#[cfg(test)]`) and
# comment lines are exempt.
gate_failed=0
for f in $(find crates/core/src crates/par/src -name '*.rs'); do
    hits="$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
        | grep -nE '\.unwrap\(\)|panic!\(' || true)"
    if [ -n "$hits" ]; then
        echo "unwrap()/panic! in non-test code of $f:" >&2
        echo "$hits" >&2
        gate_failed=1
    fi
done
if [ "$gate_failed" -ne 0 ]; then
    echo "verify: FAILED (panic-free gate)" >&2
    exit 1
fi

echo "verify: OK"
