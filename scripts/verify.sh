#!/usr/bin/env bash
# Tier-1 verification gate: build, test, and document the workspace with no
# network access and warnings denied. This is the command CI and ROADMAP.md
# mean by "tier-1 verify" — it must pass on a machine with an empty registry
# cache, which is what keeps the zero-external-crates policy honest.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export RUSTDOCFLAGS="-D warnings"

cargo build --release --offline
cargo test -q --offline
cargo doc --no-deps -q --offline

echo "verify: OK"
