#!/usr/bin/env bash
# Scrape a running cludistream coordinator's fleet metrics (Prometheus
# text exposition) over its TCP listener.
#
#   scripts/scrape.sh HOST:PORT            one scrape to stdout
#   scripts/scrape.sh HOST:PORT 2          re-scrape every 2 seconds
#
# The scrape opens a fresh connection and never performs the site
# handshake, so it cannot join, resync, or otherwise perturb the round.
# See "Monitoring a live round" in docs/OPERATIONS.md.
set -euo pipefail

addr="${1:?usage: scrape.sh HOST:PORT [WATCH_SECONDS]}"
watch="${2:-0}"

bin="$(dirname "$0")/../target/release/cludistream"
if [ ! -x "$bin" ]; then
    bin="cludistream"
fi

if [ "$watch" -gt 0 ]; then
    exec "$bin" status --connect "$addr" --watch "$watch"
fi
exec "$bin" status --connect "$addr"
